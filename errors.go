package parparaw

import (
	"errors"

	"repro/parparawerr"
)

// ErrUnstreamable: the engine's Format cannot be streamed — a record-
// delimiter transition of its DFA does not return to the start state,
// so no partition-at-a-time parse (pre-scan or serial carry) is
// correct. Only FormatBuilder grammars can trip this; every built-in
// dialect is streamable (Format.Streamable). Parse the input whole
// instead.
var ErrUnstreamable = errors.New("parparaw: format is not streamable: a record-delimiter transition does not return to the start state")

// The error taxonomy: every failure a parse or streaming run can return
// matches exactly one of these sentinels under errors.Is, and carries a
// typed value (parparawerr.InputError, MalformedError, BudgetError,
// CanceledError, InternalError) extractable with errors.As for the
// failure's context — byte offset, partition index, attempt count,
// recovered panic value. The sentinels alias package parparawerr, where
// the typed errors live; match either spelling.
//
//	res, err := engine.StreamReaderContext(ctx, r, cfg)
//	switch {
//	case errors.Is(err, parparaw.ErrInput):
//		var ie *parparawerr.InputError
//		errors.As(err, &ie) // ie.Offset is the exact resume point
//	case errors.Is(err, parparaw.ErrCanceled):
//		// res still holds the partitions emitted before the cancel
//	}
//
// CanceledError additionally unwraps to the context error, so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded also
// match.
var (
	// ErrInput: the io.Reader feeding the parse failed, after any
	// configured retries.
	ErrInput = parparawerr.ErrInput
	// ErrMalformed: the input violated the format (DFA validation
	// failure under Options.Validate).
	ErrMalformed = parparawerr.ErrMalformed
	// ErrBudget: a partition was denied admission under
	// StreamConfig.StrictBudget.
	ErrBudget = parparawerr.ErrBudget
	// ErrCanceled: the run's context was canceled or its deadline
	// passed.
	ErrCanceled = parparawerr.ErrCanceled
	// ErrInternal: a contained panic in a pipeline worker or a violated
	// pipeline invariant; the run failed cleanly (goroutines joined,
	// arenas recycled).
	ErrInternal = parparawerr.ErrInternal
)
