// Package parparawerr is the error taxonomy of the parparaw streaming
// pipeline: every failure class a long-running ingestion service must
// distinguish is a typed error here, matchable with errors.Is against a
// package sentinel and inspectable with errors.As for the failure's
// context (byte offset, partition index, recovered panic value).
//
// The classes:
//
//	ErrInput      the io.Reader feeding the stream failed (after any
//	              configured retries); InputError carries the exact byte
//	              offset the stream had consumed and the attempt count.
//	ErrMalformed  the input violated the format (DFA validation failure
//	              under Options.Validate); MalformedError carries the
//	              partition and the DFA's end state.
//	ErrBudget     a partition could not be admitted under a strict
//	              device-memory budget; BudgetError carries the estimate
//	              and the budget.
//	ErrCanceled   the run's context was canceled or its deadline passed;
//	              CanceledError unwraps to the context error, so
//	              errors.Is(err, context.Canceled) also matches.
//	ErrInternal   a contained panic in a pipeline worker (ring partition
//	              parse, convert-pool column, device kernel) or a
//	              pipeline invariant violation (boundary pre-scan /
//	              parse disagreement); InternalError carries the
//	              partition, the recovered value, and the stack.
//
// The package is deliberately tiny and dependency-free so that both the
// public parparaw package and the internal pipeline layers can share one
// vocabulary without an import cycle.
package parparawerr

import (
	"errors"
	"fmt"
)

// Sentinels for errors.Is. Every typed error in this package matches
// exactly one of them.
var (
	ErrInput     = errors.New("parparaw: input error")
	ErrMalformed = errors.New("parparaw: malformed input")
	ErrBudget    = errors.New("parparaw: device budget exhausted")
	ErrCanceled  = errors.New("parparaw: canceled")
	ErrInternal  = errors.New("parparaw: internal failure")
)

// NoPartition marks errors raised outside any particular partition
// (single-shot parses, failures before the first partition assembles).
const NoPartition = -1

// InputError reports a failure of the io.Reader feeding the stream,
// after any configured retries were exhausted. Offset is the number of
// bytes the stream had successfully consumed from the reader when the
// failure became permanent — the exact resume point for a caller that
// can reopen the source.
type InputError struct {
	// Offset is the count of input bytes consumed before the failure.
	Offset int64
	// Partition is the index of the partition being assembled, or
	// NoPartition.
	Partition int
	// Attempts is the number of read attempts made (1 = no retries).
	Attempts int
	// Err is the reader's final error.
	Err error
}

func (e *InputError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("input error at byte %d after %d attempts: %v", e.Offset, e.Attempts, e.Err)
	}
	return fmt.Sprintf("input error at byte %d: %v", e.Offset, e.Err)
}

func (e *InputError) Unwrap() error { return e.Err }

func (e *InputError) Is(target error) bool { return target == ErrInput }

// MalformedError reports a format violation detected by the parsing DFA
// under Options.Validate.
type MalformedError struct {
	// Partition is the partition whose parse failed, or NoPartition.
	Partition int
	// State names the DFA state the input ended in.
	State string
	// Detail is the underlying validation message.
	Detail string
}

func (e *MalformedError) Error() string {
	return fmt.Sprintf("malformed input: %s", e.Detail)
}

func (e *MalformedError) Is(target error) bool { return target == ErrMalformed }

// BudgetError reports that a partition could not be admitted under a
// strict device-memory budget: its estimated footprint alone exceeds the
// budget, so waiting for in-flight partitions to retire cannot help.
type BudgetError struct {
	// Partition is the partition denied admission.
	Partition int
	// Estimate is the partition's estimated device footprint in bytes.
	Estimate int64
	// Budget is the configured limit in bytes.
	Budget int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("partition %d needs an estimated %d device bytes, budget is %d", e.Partition, e.Estimate, e.Budget)
}

func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// CanceledError reports that the run's context was canceled or its
// deadline passed. It unwraps to the context error, so callers can match
// context.Canceled / context.DeadlineExceeded directly as well as
// ErrCanceled.
type CanceledError struct {
	// Partition is the partition in flight when the cancellation was
	// observed, or NoPartition.
	Partition int
	// Err is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

func (e *CanceledError) Error() string { return fmt.Sprintf("canceled: %v", e.Err) }

func (e *CanceledError) Unwrap() error { return e.Err }

func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// InternalError reports a contained panic in a pipeline worker or a
// violated pipeline invariant. The stream that returns one failed
// cleanly: goroutines were joined, arenas recycled, and no partial
// output was emitted past the failure.
type InternalError struct {
	// Partition is the partition whose worker failed, or NoPartition.
	Partition int
	// Stage names where the failure was contained ("ring", "convert",
	// "kernel", "boundary").
	Stage string
	// Value is the recovered panic value (nil for invariant violations).
	Value any
	// Stack is the goroutine stack captured at the recovery point (nil
	// for invariant violations).
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Value != nil {
		return fmt.Sprintf("internal failure in %s stage: panic: %v", e.Stage, e.Value)
	}
	return fmt.Sprintf("internal failure in %s stage", e.Stage)
}

func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Canceled wraps a context error for the given partition.
func Canceled(partition int, ctxErr error) *CanceledError {
	return &CanceledError{Partition: partition, Err: ctxErr}
}
