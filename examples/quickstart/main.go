// Quickstart: compile a parsing configuration into a reusable Engine,
// parse an RFC 4180 CSV — header, quoted fields with embedded
// delimiters, type inference — and work with the columnar result. Run
// with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	parparaw "repro"
)

const orders = `order_id,customer,items,total,placed_at
1001,"Meyer, Inc.",3,449.90,2024-11-02 09:15:00
1002,ACME Corp,1,19.99,2024-11-02 09:16:30
1003,"Böttcher ""& Sons""",7,1204.50,2024-11-02 09:20:12
1004,Initech,,99.00,2024-11-02 10:01:45
`

func main() {
	// The Engine compiles the DFA and validates the options once; it is
	// then safe to share across goroutines, and repeated Parse calls
	// recycle device memory through the engine's arena pool. For a
	// one-off parse, parparaw.Parse(bytes, opts) does the same in one
	// step.
	engine, err := parparaw.NewEngine(parparaw.Options{HasHeader: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Parse([]byte(orders))
	if err != nil {
		log.Fatal(err)
	}

	table := res.Table
	fmt.Printf("parsed %d records x %d columns (%.1f MB/s)\n\n",
		table.NumRows(), table.NumColumns(), res.Stats.Throughput()/1e6)

	// Types were inferred from the data; names came from the header.
	for c := 0; c < table.NumColumns(); c++ {
		col := table.Column(c)
		fmt.Printf("  %-12s %s\n", col.Name(), col.Type())
	}
	fmt.Println()

	// Columnar access: sum a numeric column, skipping NULLs.
	totals := table.ColumnByName("total")
	var sum float64
	for i := 0; i < totals.Len(); i++ {
		if !totals.IsNull(i) {
			sum += totals.Float64(i)
		}
	}
	fmt.Printf("gross revenue: %.2f\n", sum)

	// Quoted fields survive intact: commas, escaped quotes, umlauts.
	customers := table.ColumnByName("customer")
	for i := 0; i < customers.Len(); i++ {
		fmt.Printf("  customer %d: %s\n", i, customers.StringValue(i))
	}

	// The empty items field of order 1004 became NULL.
	items := table.ColumnByName("items")
	fmt.Printf("order 1004 items is NULL: %v\n", items.IsNull(3))

	// Timestamps materialise as Arrow timestamp[us]; Time() converts.
	placed := table.ColumnByName("placed_at")
	fmt.Printf("first order placed at %s\n", placed.Time(0).Format("2006-01-02 15:04:05"))
}
