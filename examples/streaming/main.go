// Streaming: parse a larger-than-device-memory input through the
// end-to-end streaming pipeline of §4.4 — partitions are transferred to
// the (simulated) device, parsed, and returned with all three stages of
// consecutive partitions overlapped; records straddling partition
// boundaries are carried over intact. Run with:
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"strings"

	parparaw "repro"
)

func main() {
	// Synthesise ~4 MB of quoted review-style CSV. The text fields embed
	// commas and record delimiters, so partition boundaries routinely
	// fall inside quoted strings and mid-record — the carry-over and the
	// context machinery both get exercised.
	input := generate(4 << 20)

	// StreamReader pulls fixed-size partitions from any io.Reader — an
	// os.File or network source works identically, and the full input is
	// never buffered in one piece (peak host memory stays at
	// O(PartitionSize + carry-over) however large the source is).
	res, err := parparaw.StreamReader(bytes.NewReader(input), parparaw.StreamOptions{
		Options:       parparaw.Options{},
		PartitionSize: 256 << 10, // 256 KB partitions
		// Scale the simulated PCIe delays down so the example is instant.
		Bus: parparaw.NewBus(parparaw.BusConfig{TimeScale: 1000}),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %s through %d partitions\n",
		sizeOf(len(input)), res.Stats.Partitions)
	fmt.Printf("records: %d   max carry-over: %d bytes\n",
		res.NumRows(), res.Stats.MaxCarryOver)
	fmt.Printf("bus traffic: %d bytes in, %d bytes out (full duplex)\n",
		res.Stats.InputBytes, res.Stats.OutputBytes)
	fmt.Printf("device parse busy: %v of %v end-to-end\n\n",
		res.Stats.ParseBusy, res.Stats.Duration)

	// Per-partition tables concatenate into one.
	table, err := res.Combined()
	if err != nil {
		log.Fatal(err)
	}
	stars := table.Column(1)
	var sum, n float64
	for i := 0; i < stars.Len(); i++ {
		sum += float64(stars.Int64(i))
		n++
	}
	fmt.Printf("average stars across all partitions: %.2f\n", sum/n)
}

// generate builds id,stars,"text" records until size bytes are reached.
func generate(size int) []byte {
	rng := rand.New(rand.NewSource(7))
	words := []string{"good", "bad, actually", "fine", "stellar", "meh", "would\nreturn"}
	var sb strings.Builder
	id := 0
	for sb.Len() < size {
		id++
		fmt.Fprintf(&sb, "%d,%d,\"", id, 1+rng.Intn(5))
		for w := 0; w < 20+rng.Intn(60); w++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		sb.WriteString("\"\n")
	}
	return []byte(sb.String())
}

func sizeOf(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%d KB", n>>10)
}
