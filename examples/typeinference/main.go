// Typeinference: schema-less ingestion (§4.3). Without a schema,
// ParPaRaw infers each column's minimal type by classifying every field
// and reducing per column — efficient because, after partitioning, all
// of a column's symbols lie cohesively in memory. The example also
// shows column-count validation with record rejection, column
// selection, and default values for empty fields. Run with:
//
//	go run ./examples/typeinference
package main

import (
	"fmt"
	"log"

	parparaw "repro"
)

const sensors = `12,22.5,2024-03-01,ok,true
13,21.875,2024-03-02,ok,true
14,-3.25,2024-03-03,degraded,false
15,19,2024-03-04,ok,true
16,,2024-03-05,offline,false
`

func main() {
	// 1. Pure inference: int64, float64, date32, string, bool.
	res, err := parparaw.Parse([]byte(sensors), parparaw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred schema:")
	for c := 0; c < res.Table.NumColumns(); c++ {
		col := res.Table.Column(c)
		fmt.Printf("  %-6s %-14s (nulls: %d)\n", col.Name(), col.Type(), col.NullCount())
	}
	fmt.Printf("observed columns per record: min=%d max=%d\n\n",
		res.Stats.MinColumns, res.Stats.MaxColumns)

	// 2. Defaults: the empty reading of row 4 becomes 0.0 instead of NULL.
	res, err = parparaw.Parse([]byte(sensors), parparaw.Options{
		DefaultValues: map[int]string{1: "0.0"},
	})
	if err != nil {
		log.Fatal(err)
	}
	readings := res.Table.Column(1)
	fmt.Printf("with default: row 4 reading = %v (null: %v)\n\n",
		readings.Float64(4), readings.IsNull(4))

	// 3. Validation: a record with the wrong column count is rejected
	// rather than silently padded.
	ragged := sensors + "17,5.0,2024-03-06\n"
	res, err = parparaw.Parse([]byte(ragged), parparaw.Options{
		ExpectedColumns:    5,
		RejectInconsistent: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ragged input: %d records, %d rejected (record 5: %v)\n\n",
		res.Table.NumRows(), res.Table.RejectedCount(), res.Table.Rejected(5))

	// 4. Projection pushdown: select and reorder columns before
	// partitioning — irrelevant symbols never reach conversion.
	res, err = parparaw.Parse([]byte(sensors), parparaw.Options{
		SelectColumns: []int{3, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected columns (status, id):")
	for r := 0; r < res.Table.NumRows(); r++ {
		fmt.Printf("  %-10s %s\n",
			res.Table.Column(0).ValueString(r), res.Table.Column(1).ValueString(r))
	}
}
