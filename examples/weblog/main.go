// Weblog: parse an Extended-Log-Format server log with the first-class
// weblog dialect. The format has '#' directive lines (which a
// quote-counting parser cannot handle — §1/§2 of the paper),
// space-delimited fields, and double-quoted strings that may embed
// spaces and backslash-escaped quotes. This is the "more expressive
// parsing rules" use case that motivates simulating a full FSM instead
// of exploiting format-specific tricks. Earlier revisions approximated
// the grammar with a space-delimited CSV dialect; NewWeblog is the real
// thing: escapes unfold during parsing, and with HasHeader the column
// names come straight from the log's own "#Fields:" directive. Run
// with:
//
//	go run ./examples/weblog
package main

import (
	"fmt"
	"log"

	parparaw "repro"
)

const accessLog = `#Version: 1.0
#Fields: date time cs-method cs-uri sc-status time-taken cs(User-Agent)
2024-11-02 09:15:00 GET /index.html 200 0.012 "Mozilla/5.0 (X11; Linux)"
2024-11-02 09:15:02 GET /api/orders 200 0.044 "curl/8.5.0"
#Comment: cache flushed here
2024-11-02 09:15:07 POST /api/orders 201 0.102 "Mozilla/5.0 \"X11; Linux\""
2024-11-02 09:15:09 GET /missing 404 0.003 "Go-http-client/2.0"
2024-11-02 09:15:12 GET /index.html 304 0.001 "Mozilla/5.0 (Macintosh)"
`

func main() {
	res, err := parparaw.Parse([]byte(accessLog), parparaw.Options{
		Format: parparaw.NewWeblog(),
		// Self-describing: names come from the "#Fields:" directive
		// without consuming any record, and types are inferred.
		HasHeader: true,
		Validate:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	table := res.Table

	// Directive lines left no footprint in the output.
	fmt.Printf("%d requests (directive lines skipped by the DFA)\n\n", table.NumRows())

	status := table.ColumnByName("sc-status")
	taken := table.ColumnByName("time-taken")
	uri := table.ColumnByName("cs-uri")
	agent := table.ColumnByName("cs(User-Agent)")

	var errors int
	var slowest float64
	slowestURI := ""
	for i := 0; i < table.NumRows(); i++ {
		if status.Int64(i) >= 400 {
			errors++
		}
		if t := taken.Float64(i); t > slowest {
			slowest, slowestURI = t, uri.StringValue(i)
		}
	}
	fmt.Printf("error responses: %d\n", errors)
	fmt.Printf("slowest request: %s (%.3fs)\n", slowestURI, slowest)

	// Quoted user agents kept their embedded spaces, and the \" escapes
	// unfolded to plain quotes during parsing.
	fmt.Println("\nuser agents:")
	seen := map[string]bool{}
	for i := 0; i < table.NumRows(); i++ {
		ua := agent.StringValue(i)
		if !seen[ua] {
			seen[ua] = true
			fmt.Printf("  %s\n", ua)
		}
	}
}
