package parparaw

// Differential and behavioural suite for the plan cache: a cached
// engine must be indistinguishable from a freshly compiled one
// (byte-identical tables over the parity harness's comparator),
// near-identical configurations must never share a fingerprint, and
// eviction must actually release memory — evicted engines drain their
// arena pools even with runs in flight at eviction time.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/testleak"
)

// cacheDifferentialConfigs spans the Options space the daemon exercises:
// dialects, schema present/inferred, pushdown on/off, tagging modes.
func cacheDifferentialConfigs(t *testing.T) []struct {
	name  string
	opts  Options
	input string
} {
	t.Helper()
	mustFormat := func(name string) *Format {
		f, err := FormatByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	csvIn := "city,code,pax\nNew York,JFK,100\nBoston,BOS,50\nChicago,ORD,75\n"
	return []struct {
		name  string
		opts  Options
		input string
	}{
		{"csv-inferred", Options{Format: mustFormat("csv"), HasHeader: true}, csvIn},
		{"csv-schema", Options{
			Format:    mustFormat("csv"),
			HasHeader: true,
			Schema:    NewSchema(Field{Name: "city"}, Field{Name: "code"}, Field{Name: "pax", Type: Int64}),
		}, csvIn},
		{"csv-pushdown", Options{
			Format:    mustFormat("csv"),
			HasHeader: true,
			Scan:      ScanOptions{Select: []int{0, 2}, Where: []Predicate{IntRange(2, 0, 80)}},
		}, csvIn},
		{"tsv-inline", Options{Format: mustFormat("tsv"), Mode: InlineTerminated},
			"1\talpha\t10\n2\tbeta\t20\n"},
		{"jsonl", Options{Format: mustFormat("jsonl"), HasHeader: true},
			`{"a":"1","b":"x"}` + "\n" + `{"a":"2","b":"y"}` + "\n"},
		{"weblog-validate", Options{Format: mustFormat("weblog"), Validate: true},
			"#Fields: date method\n2026-01-01 GET\n2026-01-02 POST\n"},
	}
}

// TestCacheDifferential: for every configuration, the table parsed on a
// cache-served engine is byte-identical to one parsed on a freshly
// compiled engine — and the second Get is a hit returning the same
// engine.
func TestCacheDifferential(t *testing.T) {
	cache := NewEngineCache(0)
	for _, tc := range cacheDifferentialConfigs(t) {
		t.Run(tc.name, func(t *testing.T) {
			cached, err := cache.Get(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			again, _, hit, err := cache.GetKeyed(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Fatal("second Get for identical Options was a miss")
			}
			if again != cached {
				t.Fatal("second Get returned a different engine")
			}

			fresh, err := NewEngine(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()

			got, err := cached.ParseReader(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.ParseReader(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			assertTablesIdentical(t, tc.name, got.Table, want.Table)
		})
	}
	if st := cache.Stats(); st.Misses != int64(len(cacheDifferentialConfigs(t))) {
		t.Errorf("misses = %d, want one per configuration (%d)", st.Misses, len(cacheDifferentialConfigs(t)))
	}
	cache.Purge()
}

// TestFingerprintDistinguishes: near-identical Options must map to
// distinct fingerprints. Each case here is a pair that would collide
// under a naive concatenation encoding.
func TestFingerprintDistinguishes(t *testing.T) {
	csv := DefaultFormat()
	cases := []struct {
		name string
		a, b Options
	}{
		{"default-values-shift",
			Options{Format: csv, DefaultValues: map[int]string{0: "ab", 1: "c"}},
			Options{Format: csv, DefaultValues: map[int]string{0: "a", 1: "bc"}}},
		{"eq-vs-prefix",
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{Eq(0, "x")}}},
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{Prefix(0, "x")}}}},
		{"select-vs-scan-select",
			Options{Format: csv, SelectColumns: []int{0, 1}},
			Options{Format: csv, Scan: ScanOptions{Select: []int{0, 1}}}},
		{"pushdown-toggle",
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{Eq(0, "x")}}},
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{Eq(0, "x")}, NoPushdown: true}}},
		{"schema-nil-vs-empty-name",
			Options{Format: csv},
			Options{Format: csv, Schema: NewSchema(Field{Name: ""})}},
		{"header-toggle",
			Options{Format: csv},
			Options{Format: csv, HasHeader: true}},
		{"mode",
			Options{Format: csv, Mode: RecordTagged},
			Options{Format: csv, Mode: InlineTerminated}},
		{"validate-toggle",
			Options{Format: csv},
			Options{Format: csv, Validate: true}},
		{"predicate-column",
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{IsNull(0)}}},
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{IsNull(1)}}}},
		{"int-range-bounds",
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{IntRange(0, 0, 10)}}},
			Options{Format: csv, Scan: ScanOptions{Where: []Predicate{IntRange(0, 0, 11)}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if Fingerprint(tc.a) == Fingerprint(tc.b) {
				t.Errorf("fingerprints collide:\n a: %+v\n b: %+v", tc.a, tc.b)
			}
		})
	}
}

// TestFingerprintEquivalences: configurations that compile to the same
// plan must share a fingerprint — most importantly dialects compiled
// per request, which are distinct pointers with identical machines.
func TestFingerprintEquivalences(t *testing.T) {
	a, err := FormatByName("jsonl")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FormatByName("jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("FormatByName returned a shared pointer; the equivalence below proves nothing")
	}
	if Fingerprint(Options{Format: a}) != Fingerprint(Options{Format: b}) {
		t.Error("per-request compilations of one dialect fingerprint differently")
	}
	if Fingerprint(Options{}) != Fingerprint(Options{Format: DefaultFormat()}) {
		t.Error("nil Format does not fingerprint as the default format")
	}
	if Fingerprint(Options{HasHeader: true}) != Fingerprint(Options{HasHeader: true}) {
		t.Error("fingerprint is not deterministic")
	}
}

// TestCacheCompilesOnce: N concurrent Gets for one new configuration
// compile exactly one engine — the plan cache's reason to exist, under
// the contention a daemon actually sees.
func TestCacheCompilesOnce(t *testing.T) {
	cache := NewEngineCache(0)
	opts := Options{Format: DefaultFormat(), HasHeader: true}
	const workers = 16
	engines := make([]*Engine, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := cache.Get(opts)
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent Gets returned distinct engines")
		}
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", st, workers-1)
	}
	cache.Purge()
}

// TestCacheEvictionDrainsArenas: the eviction contract — an engine
// dropped by the LRU bound Closes, and its arena pool drains to zero
// reserved bytes even when a run holds one of its arenas at eviction
// time (the arena is dropped on release instead of recycled).
func TestCacheEvictionDrainsArenas(t *testing.T) {
	base := testleak.Count()
	cache := NewEngineCache(1)
	var evicted []string
	cache.OnEvict(func(key string, e *Engine) { evicted = append(evicted, key) })

	optsA := Options{Format: DefaultFormat(), HasHeader: true}
	a, err := cache.Get(optsA)
	if err != nil {
		t.Fatal(err)
	}
	// Populate A's pool: a parse checks an arena out and recycles it.
	if _, err := a.ParseReader(strings.NewReader("h1,h2\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	if a.idleArenaCount() == 0 || a.reservedBytes() == 0 {
		t.Fatalf("parse did not populate the pool: %d idle arenas, %d reserved bytes",
			a.idleArenaCount(), a.reservedBytes())
	}
	if cache.ReservedBytes() != a.reservedBytes() {
		t.Errorf("cache.ReservedBytes() = %d, want %d", cache.ReservedBytes(), a.reservedBytes())
	}

	// Simulate a run in flight across the eviction.
	held := a.checkout()

	// A second configuration evicts A from the 1-entry cache.
	if _, err := cache.Get(Options{Format: DefaultFormat()}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 || cache.Contains(optsA) {
		t.Fatalf("A still cached after eviction (len %d)", cache.Len())
	}
	if len(evicted) != 1 || evicted[0] != Fingerprint(optsA) {
		t.Fatalf("OnEvict fired %d times with keys %v", len(evicted), evicted)
	}
	if st := cache.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}

	// Close drained the idle arenas immediately…
	if a.idleArenaCount() != 0 || a.reservedBytes() != 0 {
		t.Errorf("evicted engine still holds %d idle arenas, %d reserved bytes",
			a.idleArenaCount(), a.reservedBytes())
	}
	if a.arenasInUse() != 1 {
		t.Errorf("in-use count = %d, want the held arena", a.arenasInUse())
	}
	// …and the in-flight arena is dropped, not recycled, on release.
	a.release(held)
	if a.arenasInUse() != 0 || a.idleArenaCount() != 0 || a.reservedBytes() != 0 {
		t.Errorf("post-release balance: %d in use, %d idle, %d reserved; want all zero",
			a.arenasInUse(), a.idleArenaCount(), a.reservedBytes())
	}

	// A closed engine still parses (fresh arena per run, dropped after):
	// eviction must never break a request already holding the engine.
	res, err := a.ParseReader(strings.NewReader("h1,h2\n3,4\n"))
	if err != nil {
		t.Fatalf("parse on evicted engine: %v", err)
	}
	if res.Table.NumRows() != 1 {
		t.Errorf("rows = %d, want 1", res.Table.NumRows())
	}
	if a.idleArenaCount() != 0 || a.reservedBytes() != 0 {
		t.Errorf("closed engine recycled an arena: %d idle, %d reserved",
			a.idleArenaCount(), a.reservedBytes())
	}
	cache.Purge()
	testleak.After(t, base)
}

// TestCacheEvictionUnderPressure: hammer a small cache with more
// configurations than it holds; every evicted engine must end fully
// drained, and the cache must never exceed its bound.
func TestCacheEvictionUnderPressure(t *testing.T) {
	base := testleak.Count()
	const bound = 4
	cache := NewEngineCache(bound)
	var mu sync.Mutex
	var gone []*Engine
	cache.OnEvict(func(key string, e *Engine) {
		mu.Lock()
		gone = append(gone, e)
		mu.Unlock()
	})

	input := "a,b,c\n1,2,3\n4,5,6\n"
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				// SkipRows varies the fingerprint: 16 distinct plans per
				// worker cycling through a 4-entry cache.
				opts := Options{Format: DefaultFormat(), HasHeader: true, SkipRows: (worker*16 + j) % 8}
				e, err := cache.Get(opts)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.ParseReader(strings.NewReader(input)); err != nil {
					// An engine evicted and Closed mid-checkout still
					// parses; any error here is a real bug.
					t.Errorf("worker %d run %d: %v", worker, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if n := cache.Len(); n > bound {
		t.Errorf("cache grew to %d entries, bound %d", n, bound)
	}
	mu.Lock()
	if len(gone) == 0 {
		mu.Unlock()
		t.Fatal("pressure produced no evictions")
	}
	for i, e := range gone {
		if e.arenasInUse() != 0 || e.idleArenaCount() != 0 || e.reservedBytes() != 0 {
			t.Errorf("evicted engine %d: %d in use, %d idle, %d reserved; want drained",
				i, e.arenasInUse(), e.idleArenaCount(), e.reservedBytes())
		}
	}
	if st := cache.Stats(); st.Evictions != int64(len(gone)) {
		t.Errorf("eviction counter %d, OnEvict saw %d", st.Evictions, len(gone))
	}
	mu.Unlock() // Purge fires OnEvict, which takes mu
	cache.Purge()
	testleak.After(t, base)
}

// TestCacheBound: inserting max+N distinct configurations holds the
// entry count at max, evicting in LRU order.
func TestCacheBound(t *testing.T) {
	cache := NewEngineCache(3)
	opts := func(skip int) Options {
		return Options{Format: DefaultFormat(), SkipRows: skip}
	}
	for i := 0; i < 6; i++ {
		if _, err := cache.Get(opts(i)); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 3 {
		t.Fatalf("len = %d, want 3", cache.Len())
	}
	for i := 0; i < 3; i++ {
		if cache.Contains(opts(i)) {
			t.Errorf("oldest entry %d survived", i)
		}
	}
	for i := 3; i < 6; i++ {
		if !cache.Contains(opts(i)) {
			t.Errorf("recent entry %d evicted", i)
		}
	}
	// Touching the LRU entry protects it from the next insertion.
	if _, err := cache.Get(opts(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(opts(6)); err != nil {
		t.Fatal(err)
	}
	if !cache.Contains(opts(3)) {
		t.Error("recently touched entry evicted")
	}
	if cache.Contains(opts(4)) {
		t.Error("LRU entry survived insertion")
	}
	cache.Purge()
	if cache.Len() != 0 {
		t.Errorf("len after Purge = %d", cache.Len())
	}
}

// TestCacheRejectsBadOptions: a configuration NewEngine rejects is not
// cached, and the error reaches the caller.
func TestCacheRejectsBadOptions(t *testing.T) {
	cache := NewEngineCache(0)
	bad := Options{Format: DefaultFormat(), Scan: ScanOptions{Select: []int{0}}, SelectColumns: []int{1}}
	if _, err := NewEngine(bad); err == nil {
		t.Skip("conflicting selections no longer rejected; pick another invalid config")
	}
	if _, err := cache.Get(bad); err == nil {
		t.Fatal("cache accepted Options NewEngine rejects")
	}
	if cache.Len() != 0 {
		t.Errorf("failed compilation left %d cache entries", cache.Len())
	}
	if st := cache.Stats(); st.Misses != 0 && st.Hits != 0 {
		t.Logf("stats after failed Get: %+v", st)
	}
}

func ExampleEngineCache() {
	cache := NewEngineCache(8)
	defer cache.Purge()

	parse := func(input string) {
		eng, err := cache.Get(Options{HasHeader: true})
		if err != nil {
			panic(err)
		}
		res, err := eng.ParseReader(strings.NewReader(input))
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Table.NumRows(), "rows")
	}
	parse("a,b\n1,2\n")
	parse("a,b\n3,4\n5,6\n") // same configuration: compiled once
	st := cache.Stats()
	fmt.Printf("%d hit, %d miss\n", st.Hits, st.Misses)
	// Output:
	// 1 rows
	// 2 rows
	// 1 hit, 1 miss
}
