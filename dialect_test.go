package parparaw

// Cross-grammar oracles for the dialect layer: every new grammar
// (JSONL, escaped TSV/PSV, weblog) is pinned against an independent
// hand-written reference scanner — plain Go control flow, no shared
// code with internal/dfa — across the three tagging modes and the
// streaming pipeline, and fuzzed against the same references (plus
// encoding/json for JSONL) with the fast-path toggles composed in.
//
// Reference semantics mirrored from the kernels (internal/core):
//   - a record-delimiter emission ends the current record, a
//     field-delimiter emission ends the current field;
//   - input ending in a mid-record state flushes one trailing record;
//     if that state is non-accepting the input is also invalid;
//   - entering the invalid sink keeps completed records, drops the
//     record in progress, and swallows the rest of the input;
//   - in String columns, present-but-empty fields materialise as ""
//     (never NULL); fields missing from ragged records may be NULL.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"unicode/utf8"
)

// ---------------------------------------------------------------------
// Reference scanners
// ---------------------------------------------------------------------

// refJSONL is the independent JSON-Lines reference: one top-level
// object per line, keys/values as alternating fields, quotes stripped,
// escapes raw, nested containers opaque up to maxDepth. Returns the
// records and whether the input is invalid under the grammar.
func refJSONL(in []byte, maxDepth int) ([][]string, bool) {
	const (
		jSOL  = iota // start of line
		jOBJ         // inside the top-level object
		jSTR         // inside a top-level string
		jESC         // after a backslash in a top-level string
		jEND         // after the closing brace
		jNEST        // inside a nested container (depth tracked)
		jNSTR        // inside a nested string
		jNESC        // after a backslash in a nested string
		jINV         // invalid sink
	)
	st, depth := jSOL, 0
	var recs [][]string
	var rec []string
	var cur []byte
	data := func(c byte) { cur = append(cur, c) }
	endField := func() { rec = append(rec, string(cur)); cur = nil }
	endRec := func() { endField(); recs = append(recs, rec); rec = nil }
	fail := func() { st, rec, cur = jINV, nil, nil }
	for _, c := range in {
		switch st {
		case jSOL:
			switch c {
			case '\n', ' ', '\t', '\r': // blank lines and padding vanish
			case '{':
				st = jOBJ
			default:
				fail()
			}
		case jOBJ:
			switch c {
			case '\n', ']':
				fail()
			case '{', '[':
				if maxDepth < 2 {
					fail()
				} else {
					st, depth = jNEST, 2
					data(c)
				}
			case '}':
				st = jEND
			case '"':
				st = jSTR
			case ':', ',':
				endField()
			case ' ', '\t', '\r': // depth-1 whitespace is control
			default:
				data(c) // bare tokens are tolerated
			}
		case jSTR:
			switch c {
			case '\n':
				fail()
			case '"':
				st = jOBJ
			case '\\':
				st = jESC
				data(c) // escapes stay raw in the field value
			default:
				data(c)
			}
		case jESC:
			if c == '\n' {
				fail()
			} else {
				st = jSTR
				data(c)
			}
		case jEND:
			switch c {
			case '\n':
				endRec()
				st = jSOL
			case ' ', '\t', '\r':
			default:
				fail()
			}
		case jNEST:
			switch c {
			case '\n':
				fail()
			case '{', '[':
				if depth+1 > maxDepth {
					fail()
				} else {
					depth++
					data(c)
				}
			case '}', ']':
				data(c)
				if depth == 2 {
					st, depth = jOBJ, 0
				} else {
					depth--
				}
			case '"':
				st = jNSTR
				data(c)
			default:
				data(c)
			}
		case jNSTR:
			switch c {
			case '\n':
				fail()
			case '"':
				st = jNEST
				data(c)
			case '\\':
				st = jNESC
				data(c)
			default:
				data(c)
			}
		case jNESC:
			if c == '\n' {
				fail()
			} else {
				st = jNSTR
				data(c)
			}
		case jINV:
		}
	}
	switch st {
	case jINV:
		return recs, true
	case jSOL:
		return recs, false
	default:
		endRec()
		return recs, st != jEND // jEND is the only accepting mid-record end
	}
}

// refTSV is the independent backslash-escape reference: the escape
// introducer is dropped and the next byte kept literal, comment lines
// vanish, and with CRLF the record delimiter is a strict "\r\n" (bare
// '\r' or '\n' is invalid).
func refTSV(in []byte, o TSV) ([][]string, bool) {
	fd, ec := o.Delimiter, o.Escape
	if fd == 0 {
		fd = '\t'
	}
	if ec == 0 {
		ec = '\\'
	}
	cm, crlf := o.Comment, o.CRLF
	const (
		tEOR = iota // just consumed a record delimiter
		tFLD        // mid-record
		tESC        // after the escape introducer
		tCR         // consumed '\r' of "\r\n" (CRLF only)
		tCMT        // inside a comment line
		tCMC        // consumed '\r' inside a comment line (CRLF only)
		tINV        // invalid sink (CRLF only)
	)
	st := tEOR
	var recs [][]string
	var rec []string
	var cur []byte
	data := func(c byte) { cur = append(cur, c) }
	endField := func() { rec = append(rec, string(cur)); cur = nil }
	endRec := func() { endField(); recs = append(recs, rec); rec = nil }
	fail := func() { st, rec, cur = tINV, nil, nil }
	for _, c := range in {
		switch st {
		case tEOR, tFLD:
			switch {
			case c == '\n':
				if crlf {
					fail()
				} else {
					endRec()
					st = tEOR
				}
			case c == '\r' && crlf:
				st = tCR
			case c == fd:
				endField()
				st = tFLD
			case c == ec:
				st = tESC
			case cm != 0 && c == cm && st == tEOR:
				st = tCMT
			default:
				data(c) // '\r' in the LF form is an ordinary data byte
				st = tFLD
			}
		case tESC:
			data(c) // whatever it is: delimiter, newline, the escape itself
			st = tFLD
		case tCR:
			if c == '\n' {
				endRec()
				st = tEOR
			} else {
				fail()
			}
		case tCMT:
			switch {
			case c == '\n':
				if crlf {
					fail()
				} else {
					st = tEOR
				}
			case c == '\r' && crlf:
				st = tCMC
			default: // comment text (and '\r' in the LF form) is control
			}
		case tCMC:
			if c == '\n' {
				st = tEOR
			} else {
				fail()
			}
		case tINV:
		}
	}
	switch st {
	case tINV:
		return recs, true
	case tEOR, tCMT, tCMC:
		return recs, false
	default:
		endRec()
		return recs, st != tFLD // dangling escape / truncated "\r\n"
	}
}

// refWeblog is the independent Extended-Log-Format reference: space-
// delimited fields, '#' directive lines and blank/all-space lines
// vanish, quotes enclose a field only when opened at field start and
// are stripped, backslash escapes inside quotes unfold, '\r' outside
// quotes is control.
func refWeblog(in []byte) ([][]string, bool) {
	const (
		wEOR = iota // record start
		wEOF        // just consumed a field delimiter
		wFLD        // inside an unquoted field / after a closing quote
		wSTR        // inside a quoted field
		wESC        // after a backslash inside a quoted field
		wDIR        // inside a directive line
	)
	st := wEOR
	var recs [][]string
	var rec []string
	var cur []byte
	data := func(c byte) { cur = append(cur, c) }
	endField := func() { rec = append(rec, string(cur)); cur = nil }
	endRec := func() { endField(); recs = append(recs, rec); rec = nil }
	for _, c := range in {
		switch st {
		case wEOR:
			switch c {
			case '\n', ' ', '\r': // blank lines, leading spaces vanish
			case '"':
				st = wSTR
			case '#':
				st = wDIR
			default:
				data(c)
				st = wFLD
			}
		case wEOF:
			switch c {
			case '\n':
				endRec()
				st = wEOR
			case ' ':
				endField() // consecutive spaces make empty fields
			case '"':
				st = wSTR
			case '\r':
			default:
				data(c)
				st = wFLD
			}
		case wFLD:
			switch c {
			case '\n':
				endRec()
				st = wEOR
			case ' ':
				endField()
				st = wEOF
			case '\r':
			default:
				data(c) // '"', '\\', '#' are plain data mid-field
			}
		case wSTR:
			switch c {
			case '"':
				st = wFLD
			case '\\':
				st = wESC // introducer dropped: escapes unfold
			default:
				data(c) // newlines, spaces, '\r' are data inside quotes
			}
		case wESC:
			data(c)
			st = wSTR
		case wDIR:
			if c == '\n' {
				st = wEOR
			}
		}
	}
	switch st {
	case wEOR, wDIR:
		return recs, false
	default:
		endRec()
		return recs, st == wSTR || st == wESC // truncated quoted field
	}
}

// ---------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------

func allStringSchema(n int) *Schema {
	fields := make([]Field, n)
	for i := range fields {
		fields[i] = Field{Name: fmt.Sprintf("c%d", i), Type: String}
	}
	return NewSchema(fields...)
}

func refWidth(recs [][]string) int {
	w := 0
	for _, r := range recs {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

// checkAgainstRef compares a parsed table cell-by-cell with the
// reference records. Present fields must match exactly (String columns
// keep empty fields as "", never NULL); fields missing from ragged
// records may surface as either NULL or "".
func checkAgainstRef(t *testing.T, ctx string, tbl *Table, recs [][]string) {
	t.Helper()
	if tbl.NumRows() != len(recs) {
		t.Fatalf("%s: rows = %d, want %d", ctx, tbl.NumRows(), len(recs))
	}
	for r, rec := range recs {
		for c := 0; c < tbl.NumColumns(); c++ {
			col := tbl.Column(c)
			if c < len(rec) {
				if col.IsNull(r) || col.ValueString(r) != rec[c] {
					t.Fatalf("%s: row %d col %d = %q (null=%v), want %q",
						ctx, r, c, col.ValueString(r), col.IsNull(r), rec[c])
				}
			} else if !col.IsNull(r) && col.ValueString(r) != "" {
				t.Fatalf("%s: row %d col %d = %q, want missing",
					ctx, r, c, col.ValueString(r))
			}
		}
	}
}

// refRowsFull renders constant-width reference records in the
// tableRows "|"-joined form.
func refRowsFull(recs [][]string) []string {
	rows := make([]string, len(recs))
	for i, r := range recs {
		rows[i] = strings.Join(r, "|")
	}
	return rows
}

// ---------------------------------------------------------------------
// Input generators (constant column count, valid by construction)
// ---------------------------------------------------------------------

// genJSONL emits records objects of pairs key/value pairs each (a
// constant 2*pairs columns): numbers, strings with raw escapes, bare
// tokens, nested containers to depth 4, depth-1 whitespace, blank
// lines, and "\r\n" endings.
func genJSONL(rng *rand.Rand, records, pairs int) []byte {
	var b bytes.Buffer
	pad := func() {
		if rng.Intn(3) == 0 {
			b.WriteString([]string{" ", "  ", "\t"}[rng.Intn(3)])
		}
	}
	str := func() string {
		var sb strings.Builder
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0:
				sb.WriteString(`\"`)
			case 1:
				sb.WriteString(`\\`)
			case 2:
				sb.WriteByte(" ,:{}[]"[rng.Intn(7)])
			default:
				sb.WriteByte(byte('a' + rng.Intn(26)))
			}
		}
		return sb.String()
	}
	var nested func(depth int) string
	nested = func(depth int) string {
		open, close := "{", "}"
		if rng.Intn(2) == 0 {
			open, close = "[", "]"
		}
		var sb strings.Builder
		sb.WriteString(open)
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			if depth < 4 && rng.Intn(3) == 0 {
				sb.WriteString(nested(depth + 1))
			} else {
				switch rng.Intn(3) {
				case 0:
					sb.WriteString(strconv.Itoa(rng.Intn(100)))
				case 1:
					sb.WriteString(`"` + str() + `"`)
				default:
					sb.WriteString("null")
				}
			}
		}
		sb.WriteString(close)
		return sb.String()
	}
	value := func() string {
		switch rng.Intn(6) {
		case 0:
			return strconv.Itoa(rng.Intn(2000) - 1000)
		case 1:
			return `"` + str() + `"`
		case 2:
			return nested(2)
		case 3:
			return []string{"true", "false", "null"}[rng.Intn(3)]
		case 4:
			return []string{"3.25", "-0.5", "1e3"}[rng.Intn(3)]
		default: // bare token leniency
			return string(byte('a'+rng.Intn(26))) + strconv.Itoa(rng.Intn(10))
		}
	}
	for r := 0; r < records; r++ {
		if rng.Intn(5) == 0 {
			b.WriteByte('\n') // blank line
		}
		pad()
		b.WriteByte('{')
		for p := 0; p < pairs; p++ {
			if p > 0 {
				b.WriteByte(',')
				pad()
			}
			pad()
			fmt.Fprintf(&b, `"k%d"`, p)
			pad()
			b.WriteByte(':')
			pad()
			b.WriteString(value())
		}
		pad()
		b.WriteByte('}')
		pad()
		if rng.Intn(4) == 0 {
			b.WriteByte('\r')
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// genEscaped emits records rows of cols fields under the given TSV
// dialect: plain tokens, empty fields, escaped delimiters / newlines /
// escapes / comment bytes, and interleaved comment lines.
func genEscaped(rng *rand.Rand, records, cols int, o TSV) []byte {
	fd, ec := o.Delimiter, o.Escape
	if fd == 0 {
		fd = '\t'
	}
	if ec == 0 {
		ec = '\\'
	}
	eol := "\n"
	if o.CRLF {
		eol = "\r\n"
	}
	var b bytes.Buffer
	field := func(first bool) {
		n := rng.Intn(7)
		if first && n == 0 {
			n = 1 // a raw comment byte may not lead a record
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0: // escaped field delimiter
				b.WriteByte(ec)
				b.WriteByte(fd)
			case 1: // escaped newline (legal even in the strict CRLF form)
				b.WriteByte(ec)
				b.WriteByte('\n')
			case 2: // escaped escape
				b.WriteByte(ec)
				b.WriteByte(ec)
			case 3:
				if o.Comment != 0 && (!first || i > 0) {
					b.WriteByte(o.Comment)
				} else {
					b.WriteByte(ec)
					b.WriteByte(o.Comment | 'x') // escape it at record start
				}
			default:
				b.WriteByte(byte('a' + rng.Intn(26)))
			}
		}
	}
	for r := 0; r < records; r++ {
		if o.Comment != 0 && rng.Intn(5) == 0 {
			b.WriteByte(o.Comment)
			b.WriteString(" interleaved comment")
			b.WriteString(eol)
		}
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteByte(fd)
			}
			field(c == 0)
		}
		b.WriteString(eol)
	}
	return b.Bytes()
}

// genWeblog emits records rows of cols space-delimited fields: plain
// tokens, quoted values with spaces and unfolding escapes, empty
// mid-record fields, directive lines, blank and all-space lines, and
// CRLF endings.
func genWeblog(rng *rand.Rand, records, cols int) []byte {
	var b bytes.Buffer
	plain := func() string {
		n := 1 + rng.Intn(6)
		var sb strings.Builder
		sb.WriteByte(byte('a' + rng.Intn(26))) // not ' ', '"', '#'
		for i := 1; i < n; i++ {
			sb.WriteByte("abcdefgh0123456789/:-.\"#"[rng.Intn(24)])
		}
		return sb.String()
	}
	quoted := func() string {
		var sb strings.Builder
		sb.WriteByte('"')
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(8) {
			case 0:
				sb.WriteString(`\"`)
			case 1:
				sb.WriteString(`\\`)
			case 2:
				sb.WriteByte(' ')
			default:
				sb.WriteByte(byte('a' + rng.Intn(26)))
			}
		}
		sb.WriteByte('"')
		return sb.String()
	}
	for r := 0; r < records; r++ {
		switch rng.Intn(6) {
		case 0:
			b.WriteString("#Software: gen\r\n")
		case 1:
			b.WriteString("\n")
		case 2:
			b.WriteString("   \n")
		}
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			switch {
			case rng.Intn(3) == 0:
				b.WriteString(quoted())
			case c > 0 && rng.Intn(6) == 0:
				// empty field: nothing between two delimiters
			default:
				b.WriteString(plain())
			}
		}
		if rng.Intn(3) == 0 {
			b.WriteByte('\r')
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// ---------------------------------------------------------------------
// Deterministic parity: 3 tagging modes × whole-input and streaming
// ---------------------------------------------------------------------

// TestGrammarParityModesAndStreaming generates constant-column inputs
// for every new grammar and requires byte-identical tables from all
// three tagging modes, whole-input and streamed at InFlight 1 and
// GOMAXPROCS, against the hand-written references.
func TestGrammarParityModesAndStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	psv := TSV{Delimiter: '|', Comment: '#', CRLF: true}
	tsv := TSV{Comment: '#'}
	jsonlIn := genJSONL(rng, 50, 3)
	tsvIn := genEscaped(rng, 60, 4, tsv)
	psvIn := genEscaped(rng, 60, 4, psv)
	weblogIn := genWeblog(rng, 60, 5)

	jsonlFmt, err := NewJSONL(JSONL{})
	if err != nil {
		t.Fatal(err)
	}
	tsvFmt, err := NewTSV(tsv)
	if err != nil {
		t.Fatal(err)
	}
	psvFmt, err := NewTSV(psv)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		format *Format
		input  []byte
		recs   [][]string
		inval  bool
	}{
		{"jsonl", jsonlFmt, jsonlIn, nil, false},
		{"tsv", tsvFmt, tsvIn, nil, false},
		{"psv-crlf", psvFmt, psvIn, nil, false},
		{"weblog", NewWeblog(), weblogIn, nil, false},
	}
	cases[0].recs, cases[0].inval = refJSONL(jsonlIn, 4)
	cases[1].recs, cases[1].inval = refTSV(tsvIn, tsv)
	cases[2].recs, cases[2].inval = refTSV(psvIn, psv)
	cases[3].recs, cases[3].inval = refWeblog(weblogIn)

	modes := []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.inval {
				t.Fatalf("generator emitted invalid input: %q", tc.input)
			}
			width := refWidth(tc.recs)
			for _, rec := range tc.recs {
				if len(rec) != width {
					t.Fatalf("generator emitted ragged records (%d vs %d fields)", len(rec), width)
				}
			}
			want := refRowsFull(tc.recs)
			schema := allStringSchema(width)
			for _, mode := range modes {
				res, err := Parse(tc.input, Options{Format: tc.format, Schema: schema, Mode: mode})
				if err != nil {
					t.Fatalf("%v Parse: %v", mode, err)
				}
				if res.Stats.InvalidInput {
					t.Fatalf("%v: InvalidInput on valid input", mode)
				}
				got := tableRows(res.Table)
				if len(got) != len(want) {
					t.Fatalf("%v: rows = %d, want %d", mode, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v: row %d = %q, want %q", mode, i, got[i], want[i])
					}
				}
				for _, inFlight := range []int{1, runtime.GOMAXPROCS(0)} {
					sr, err := Stream(tc.input, StreamOptions{
						Options: Options{
							Format:   tc.format,
							Schema:   schema,
							Mode:     mode,
							InFlight: inFlight,
						},
						PartitionSize: 96,
						Bus:           NewBus(BusConfig{TimeScale: 1e9, Latency: -1}),
					})
					if err != nil {
						t.Fatalf("%v/InFlight=%d Stream: %v", mode, inFlight, err)
					}
					combined, err := sr.Combined()
					if err != nil {
						t.Fatalf("%v/InFlight=%d Combined: %v", mode, inFlight, err)
					}
					got := tableRows(combined)
					if len(got) != len(want) {
						t.Fatalf("%v/InFlight=%d: rows = %d, want %d", mode, inFlight, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%v/InFlight=%d: row %d = %q, want %q", mode, inFlight, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestGrammarReferenceSemantics pins the invalid/trailing edge cases of
// each grammar end-to-end: records kept before the invalid sink, the
// trailing record of a mid-record end, and the invalid-input flag.
func TestGrammarReferenceSemantics(t *testing.T) {
	jsonlFmt, err := NewJSONL(JSONL{})
	if err != nil {
		t.Fatal(err)
	}
	tsvFmt, err := NewTSV(TSV{Comment: '#'})
	if err != nil {
		t.Fatal(err)
	}
	psvFmt, err := NewTSV(TSV{Delimiter: '|', Comment: '#', CRLF: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]func([]byte) ([][]string, bool){
		"jsonl":  func(in []byte) ([][]string, bool) { return refJSONL(in, 4) },
		"tsv":    func(in []byte) ([][]string, bool) { return refTSV(in, TSV{Comment: '#'}) },
		"psv":    func(in []byte) ([][]string, bool) { return refTSV(in, TSV{Delimiter: '|', Comment: '#', CRLF: true}) },
		"weblog": refWeblog,
	}
	formats := map[string]*Format{
		"jsonl": jsonlFmt, "tsv": tsvFmt, "psv": psvFmt, "weblog": NewWeblog(),
	}
	cases := []struct {
		grammar string
		in      string
	}{
		{"jsonl", "{\"a\":1}\n"},
		{"jsonl", "{\"a\":1}"},                         // trailing record, still valid
		{"jsonl", `{"a":"x\"y","n":{"b":[1]}}` + "\n"}, // raw escape, opaque nesting
		{"jsonl", "{\"a\":1}\n[0]\n{\"b\":2}\n"},       // sink keeps the completed record
		{"jsonl", `{"open":"oops`},                     // EOF in string: trailing + invalid
		{"jsonl", `{"a":[[[[1]]]]}` + "\n"},            // depth 5 exceeds MaxDepth
		{"tsv", "a\tb\nc\n"},                           // ragged but valid
		{"tsv", "x\\"},                                 // dangling escape: trailing + invalid
		{"tsv", "#only a comment"},                     // truncated comment tolerated
		{"tsv", "a\\\tb\tc\n\t\n"},                     // unfolded delimiter, empty fields
		{"psv", "a|b\r\nc\\|d\r\n"},
		{"psv", "a\nb\r\n"}, // bare LF: sink drops the open record
		{"psv", "a\r"},      // truncated delimiter: trailing + invalid
		{"weblog", "#Fields: a b\nx \"y z\" w\n"},
		{"weblog", `a "unterminated`}, // trailing + invalid
		{"weblog", "a  b\n   \n"},     // empty mid-record field, all-space line
	}
	for _, tc := range cases {
		recs, invalid := ref[tc.grammar]([]byte(tc.in))
		opts := Options{Format: formats[tc.grammar]}
		if w := refWidth(recs); w > 0 {
			opts.Schema = allStringSchema(w)
		}
		res, err := Parse([]byte(tc.in), opts)
		if err != nil {
			t.Fatalf("%s %q: %v", tc.grammar, tc.in, err)
		}
		if res.Stats.InvalidInput != invalid {
			t.Errorf("%s %q: InvalidInput = %v, want %v", tc.grammar, tc.in, res.Stats.InvalidInput, invalid)
		}
		checkAgainstRef(t, fmt.Sprintf("%s %q", tc.grammar, tc.in), res.Table, recs)
	}
}

// ---------------------------------------------------------------------
// Dialect registry, header inference, streamability
// ---------------------------------------------------------------------

func TestDialectRegistry(t *testing.T) {
	ds := Dialects()
	var names []string
	for _, d := range ds {
		names = append(names, d.Name)
		if d.Description == "" {
			t.Errorf("%s: empty description", d.Name)
		}
		f := d.New()
		if f == nil || f.NumStates() == 0 {
			t.Fatalf("%s: New() returned an empty format", d.Name)
		}
		if !f.Streamable() {
			t.Errorf("%s: built-in dialect must be streamable", d.Name)
		}
	}
	if got, want := strings.Join(names, " "), "csv jsonl psv tsv weblog"; got != want {
		t.Fatalf("Dialects() = %q, want %q", got, want)
	}
	kinds := map[string]string{
		"csv": "csv", "tsv": "escaped", "psv": "escaped",
		"jsonl": "jsonl", "weblog": "weblog",
	}
	for name, kind := range kinds {
		f, err := FormatByName(name)
		if err != nil {
			t.Fatalf("FormatByName(%q): %v", name, err)
		}
		if f.Kind() != kind {
			t.Errorf("FormatByName(%q).Kind() = %q, want %q", name, f.Kind(), kind)
		}
	}
	if _, ok := DialectByName("WebLog"); !ok {
		t.Error("DialectByName must be case-insensitive")
	}
	if _, ok := DialectByName("xml"); ok {
		t.Error("DialectByName(\"xml\") must miss")
	}
	if _, err := FormatByName("xml"); err == nil || !strings.Contains(err.Error(), "csv, jsonl, psv, tsv, weblog") {
		t.Errorf("FormatByName(\"xml\") error must list the dialects, got %v", err)
	}
}

func TestJSONLHeaderNaming(t *testing.T) {
	jsonlFmt, err := NewJSONL(JSONL{})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte(`{"id":1,"name":"ada"}` + "\n" + `{"id":2,"name":"bob"}` + "\n")
	res, err := Parse(input, Options{Format: jsonlFmt, HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(res.Header, " "), "id_key id name_key name"; got != want {
		t.Fatalf("Header = %q, want %q", got, want)
	}
	// The header is derived without consuming the first record.
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (JSONL header must not consume a record)", res.Table.NumRows())
	}
	if got := res.Table.Column(1).ValueString(0); got != "1" {
		t.Errorf("row 0 id = %q, want \"1\"", got)
	}
}

func TestWeblogHeaderNaming(t *testing.T) {
	input := []byte("#Version: 1.0\n#Fields: date time cs-uri\n2026-08-07 12:00:01 /index.html\n")
	res, err := Parse(input, Options{Format: NewWeblog(), HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(res.Header, " "), "date time cs-uri"; got != want {
		t.Fatalf("Header = %q, want %q", got, want)
	}
	if res.Table.NumRows() != 1 || res.Table.NumColumns() != 3 {
		t.Fatalf("shape = %dx%d, want 1x3", res.Table.NumRows(), res.Table.NumColumns())
	}
	// Without a #Fields directive nothing is consumed and no names derive.
	res, err = Parse([]byte("a b\n"), Options{Format: NewWeblog(), HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Header) != 0 {
		t.Errorf("Header = %q, want none without a #Fields directive", res.Header)
	}
	if res.Table.NumRows() != 1 {
		t.Errorf("rows = %d, want 1", res.Table.NumRows())
	}
}

// TestUnstreamableFormat pins the streaming-soundness gate: a
// FormatBuilder grammar whose record-delimiter transition does not
// return to the start state parses whole but is rejected from every
// streaming mode with ErrUnstreamable, and large ParseReader inputs
// fall back to whole-input buffering for it.
func TestUnstreamableFormat(t *testing.T) {
	fb := NewFormatBuilder()
	a := fb.State("A", true, false)
	b := fb.State("B", true, false)
	nl := fb.Group('\n')
	star := fb.CatchAll()
	fb.On(nl, a, b, RecordDelim) // the delimiter moves A→B: no reset
	fb.On(nl, b, b, RecordDelim)
	fb.On(star, a, a, Data)
	fb.On(star, b, b, Data)
	f, err := fb.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Streamable() {
		t.Fatal("non-resetting grammar must not be streamable")
	}
	input := []byte("x\ny\nz\n")
	res, err := Parse(input, Options{Format: f})
	if err != nil {
		t.Fatalf("whole-input Parse must work: %v", err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.NumRows())
	}
	_, err = Stream(input, StreamOptions{Options: Options{Format: f}})
	if !errors.Is(err, ErrUnstreamable) {
		t.Fatalf("Stream error = %v, want ErrUnstreamable", err)
	}
	// ParseReader above the streaming threshold must detect the
	// unstreamable format and buffer the whole input instead.
	defer func(old int) { ReaderStreamThreshold = old }(ReaderStreamThreshold)
	ReaderStreamThreshold = 8
	big := bytes.Repeat([]byte("record\n"), 64)
	got, err := ParseReader(bytes.NewReader(big), Options{Format: f})
	if err != nil {
		t.Fatalf("ParseReader fallback: %v", err)
	}
	if got.Table.NumRows() != 64 {
		t.Fatalf("fallback rows = %d, want 64", got.Table.NumRows())
	}
	// A streamable format at the same threshold takes the streamed route
	// and must agree with the whole-input parse.
	want, err := Parse(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := ParseReader(bytes.NewReader(big), Options{Schema: want.Table.Schema()})
	if err != nil {
		t.Fatalf("streamed ParseReader: %v", err)
	}
	if streamed.Table.NumRows() != want.Table.NumRows() {
		t.Fatalf("streamed rows = %d, want %d", streamed.Table.NumRows(), want.Table.NumRows())
	}
}

// ---------------------------------------------------------------------
// Fuzzers: grammar vs reference (and encoding/json for JSONL)
// ---------------------------------------------------------------------

// fuzzGrammarParity is the shared fuzz body: parse with fuzzed chunk
// size, fast-path toggles, and convert workers; require the table and
// the invalid-input flag to match the hand-written reference; and run
// the pushdown-vs-post-hoc Where parity leg.
func fuzzGrammarParity(t *testing.T, format *Format, ref func([]byte) ([][]string, bool), input []byte, chunkRaw, fastRaw, workersRaw uint8) {
	chunk := int(chunkRaw%64) + 1
	recs, invalid := ref(input)
	opts := Options{
		Format:         format,
		ChunkSize:      chunk,
		SplitTables:    fastRaw&1 != 0,
		NoSkipAhead:    fastRaw&2 != 0,
		NoSWARConvert:  fastRaw&4 != 0,
		ConvertWorkers: convertWorkersFromFuzz(workersRaw),
	}
	width := refWidth(recs)
	if width > 0 {
		opts.Schema = allStringSchema(width)
	}
	res, err := Parse(input, opts)
	if err != nil {
		t.Fatalf("Parse failed on %q: %v", input, err)
	}
	if res.Stats.InvalidInput != invalid {
		t.Fatalf("InvalidInput = %v, reference says %v on %q", res.Stats.InvalidInput, invalid, input)
	}
	checkAgainstRef(t, fmt.Sprintf("fuzz %q", input), res.Table, recs)

	// Pushdown parity: a fuzzed Where list must prune identically inside
	// the plan and on the post-materialisation path.
	if width > 0 {
		popts := opts
		popts.Scan.Where = whereFromFuzz(fastRaw, int(chunkRaw)%width, input)
		push, err := Parse(input, popts)
		if err != nil {
			t.Fatalf("pushdown Parse failed on %q: %v", input, err)
		}
		popts.Scan.NoPushdown = true
		post, err := Parse(input, popts)
		if err != nil {
			t.Fatalf("post-hoc Parse failed on %q: %v", input, err)
		}
		a, b := tableRows(push.Table), tableRows(post.Table)
		if len(a) != len(b) {
			t.Fatalf("pushdown rows %d vs post-hoc %d on %q (where=%v)", len(a), len(b), input, popts.Scan.Where)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pushdown row %d: %q vs %q on %q", i, a[i], b[i], input)
			}
		}
	}
}

// jsonNestingDepth returns the maximum container nesting depth of a
// JSON value (top container = 1), string-aware.
func jsonNestingDepth(line []byte) int {
	depth, max := 0, 0
	inStr, esc := false, false
	for _, c := range line {
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
			if depth > max {
				max = depth
			}
		case '}', ']':
			depth--
		}
	}
	return max
}

// jsonFlatFields extracts the alternating key/value fields of a flat
// (depth-1, container-free values) JSON object line with encoding/json,
// preserving numeric literals via UseNumber.
func jsonFlatFields(line []byte) ([]string, bool) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil || tok != json.Delim('{') {
		return nil, false
	}
	fields := []string{}
	for dec.More() {
		k, err := dec.Token()
		if err != nil {
			return nil, false
		}
		key, ok := k.(string)
		if !ok {
			return nil, false
		}
		v, err := dec.Token()
		if err != nil {
			return nil, false
		}
		var val string
		switch x := v.(type) {
		case string:
			val = x
		case json.Number:
			val = x.String()
		case bool:
			val = strconv.FormatBool(x)
		case nil:
			val = "null"
		default:
			return nil, false
		}
		fields = append(fields, key, val)
	}
	if tok, err := dec.Token(); err != nil || tok != json.Delim('}') {
		return nil, false
	}
	return fields, true
}

// FuzzJSONL cross-checks the JSONL grammar against the hand-written
// reference and encoding/json: any line that is a valid single-line
// JSON object within the depth bound must be accepted by the DFA, and
// for flat escape-free objects the extracted fields must agree with
// encoding/json's token stream.
// Run with: go test -fuzz FuzzJSONL -fuzztime 30s
func FuzzJSONL(f *testing.F) {
	f.Add([]byte(`{"a":1,"b":2}`+"\n"), uint8(31), uint8(0), uint8(0))
	f.Add([]byte(`{"k":"v\"w","n":{"x":[1, 2]}}`+"\n"), uint8(7), uint8(1), uint8(1))
	f.Add([]byte("\n{\"a\":1}\n\n{\"a\":2}"), uint8(4), uint8(2), uint8(2))
	f.Add([]byte("{}\n{bare:token}\n"), uint8(16), uint8(4), uint8(1))
	f.Add([]byte(`{"a":[[[[1]]]]}`+"\n"), uint8(8), uint8(3), uint8(0))
	f.Add([]byte(`{"open":"unterminated`), uint8(5), uint8(5), uint8(2))
	f.Add([]byte("[1,2]\njunk\n"), uint8(64), uint8(6), uint8(0))

	format, err := NewJSONL(JSONL{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input []byte, chunkRaw, fastRaw, workersRaw uint8) {
		fuzzGrammarParity(t, format,
			func(in []byte) ([][]string, bool) { return refJSONL(in, 4) },
			input, chunkRaw, fastRaw, workersRaw)

		for _, line := range bytes.Split(input, []byte("\n")) {
			trimmed := bytes.Trim(line, " \t\r")
			if len(trimmed) == 0 || trimmed[0] != '{' || !json.Valid(line) {
				continue
			}
			d := jsonNestingDepth(line)
			if d < 1 || d > 4 {
				continue
			}
			terminated := append(append([]byte(nil), line...), '\n')
			if err := format.Validate(terminated); err != nil {
				t.Fatalf("encoding/json accepts %q (depth %d) but the DFA rejects it: %v", line, d, err)
			}
			// The field comparison needs valid UTF-8: encoding/json
			// substitutes U+FFFD for invalid bytes on decode, while the
			// grammar keeps field bytes raw.
			if d == 1 && !bytes.ContainsAny(line, `\`) && utf8.Valid(line) {
				want, ok := jsonFlatFields(line)
				if !ok {
					continue
				}
				recs, bad := refJSONL(terminated, 4)
				if bad || len(recs) != 1 {
					t.Fatalf("reference rejects json-valid flat object %q (recs=%d bad=%v)", line, len(recs), bad)
				}
				if len(want) == 0 {
					// Documented divergence: an empty object yields one
					// empty field, not zero fields.
					want = []string{""}
				}
				if strings.Join(recs[0], "\x00") != strings.Join(want, "\x00") {
					t.Fatalf("fields of %q: grammar %q vs encoding/json %q", line, recs[0], want)
				}
			}
		}
	})
}

// FuzzTSVEscape cross-checks the escape-delimited family against the
// unfolding reference, with the dialect itself fuzzed (delimiter,
// CRLF strictness, comment symbol).
// Run with: go test -fuzz FuzzTSVEscape -fuzztime 30s
func FuzzTSVEscape(f *testing.F) {
	f.Add([]byte("a\tb\nc\td\n"), uint8(0), uint8(31), uint8(0), uint8(0))
	f.Add([]byte("a\\\tb\tc\n"), uint8(0), uint8(7), uint8(1), uint8(1))
	f.Add([]byte("a|b\r\nc\\|d\r\n"), uint8(3), uint8(4), uint8(2), uint8(2))
	f.Add([]byte("# comment\nx\\\ny\n"), uint8(4), uint8(16), uint8(3), uint8(1))
	f.Add([]byte("a\rb\r\n"), uint8(2), uint8(8), uint8(4), uint8(0))
	f.Add([]byte("dangling\\"), uint8(1), uint8(5), uint8(5), uint8(2))
	f.Add([]byte("\n\t\n"), uint8(0), uint8(64), uint8(6), uint8(0))

	f.Fuzz(func(t *testing.T, input []byte, dialRaw, chunkRaw, fastRaw, workersRaw uint8) {
		dialect := TSV{}
		if dialRaw&1 != 0 {
			dialect.Delimiter = '|'
		}
		if dialRaw&2 != 0 {
			dialect.CRLF = true
		}
		if dialRaw&4 != 0 {
			dialect.Comment = '#'
		}
		format, err := NewTSV(dialect)
		if err != nil {
			t.Fatalf("NewTSV(%+v): %v", dialect, err)
		}
		fuzzGrammarParity(t, format,
			func(in []byte) ([][]string, bool) { return refTSV(in, dialect) },
			input, chunkRaw, fastRaw, workersRaw)
	})
}

// FuzzWeblog cross-checks the weblog grammar against the quote/escape
// unfolding reference.
// Run with: go test -fuzz FuzzWeblog -fuzztime 30s
func FuzzWeblog(f *testing.F) {
	f.Add([]byte("#Fields: a b\nx \"y z\" w\n"), uint8(31), uint8(0), uint8(0))
	f.Add([]byte(`a "say \"hi\" \\ bye" b`+"\n"), uint8(7), uint8(1), uint8(1))
	f.Add([]byte("a b\r\n\r\n   \r\nc #d\r\n"), uint8(4), uint8(2), uint8(2))
	f.Add([]byte("\"multi\nline\" tail"), uint8(16), uint8(3), uint8(1))
	f.Add([]byte(`a "unterminated`), uint8(5), uint8(4), uint8(0))
	f.Add([]byte("a  b\n"), uint8(8), uint8(5), uint8(2))

	format := NewWeblog()
	f.Fuzz(func(t *testing.T, input []byte, chunkRaw, fastRaw, workersRaw uint8) {
		fuzzGrammarParity(t, format, refWeblog, input, chunkRaw, fastRaw, workersRaw)
	})
}
