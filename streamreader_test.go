package parparaw

// Reader-vs-slice parity: StreamReader must produce cell-for-cell the
// same tables as Parse on the concatenated input, for every tagging
// mode, for UTF-16 content, and for partition sizes that split records,
// quoted fields, code units, and surrogate pairs — while never reading
// more than one partition's worth of bytes at a time from the source.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// maxReadReader asserts the pipeline pulls input in bounded chunks: any
// single Read asking for more than limit bytes fails the test, which is
// exactly what an io.ReadAll-style slurp would do.
type maxReadReader struct {
	t     *testing.T
	r     io.Reader
	limit int
}

func (m *maxReadReader) Read(p []byte) (int, error) {
	if len(p) > m.limit {
		m.t.Errorf("read of %d bytes exceeds the %d-byte partition bound (input slurped?)", len(p), m.limit)
	}
	return m.r.Read(p)
}

// shortReadReader yields at most k bytes per Read, in a rotating
// pattern, exercising partial reads the way sockets do.
type shortReadReader struct {
	r io.Reader
	k int
	i int
}

func (s *shortReadReader) Read(p []byte) (int, error) {
	s.i++
	n := s.i%s.k + 1
	if n < len(p) {
		p = p[:n]
	}
	return s.r.Read(p)
}

func assertTablesEqual(t *testing.T, label string, got, want *Table) {
	t.Helper()
	g, w := tableRows(got), tableRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: rows = %d, want %d", label, len(g), len(w))
	}
	if got.NumColumns() != want.NumColumns() {
		t.Fatalf("%s: columns = %d, want %d", label, got.NumColumns(), want.NumColumns())
	}
	for r := range w {
		if g[r] != w[r] {
			t.Fatalf("%s: row %d = %q, want %q", label, r, g[r], w[r])
		}
	}
}

func TestStreamReaderParityAcrossModes(t *testing.T) {
	var quoted bytes.Buffer
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&quoted, "%d,\"quoted, with\nnewline %d\",%d.25\n", i, i, i)
	}
	var utf16 strings.Builder
	for i := 0; i < 40; i++ {
		utf16.WriteString("héllo,wörld 🚀,42\nπ,🚕taxi,7\n")
	}

	cases := []struct {
		name  string
		data  []byte
		opts  Options
		modes []TaggingMode
	}{
		{name: "quoted", data: quoted.Bytes(), modes: []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited}},
		// Odd partition sizes split UTF-16 code units and surrogate
		// pairs across partitions; the raw-byte carry-over must heal
		// them.
		{name: "utf16", data: encodeUTF16LE(utf16.String(), false), opts: Options{Encoding: UTF16LE}, modes: []TaggingMode{RecordTagged, VectorDelimited}},
		{name: "utf16-bom", data: encodeUTF16LE(utf16.String(), true), opts: Options{DetectEncoding: true}, modes: []TaggingMode{RecordTagged}},
	}

	// 7 splits everything (records, quotes, surrogate pairs); 64 and
	// 1021 split records; the last size exceeds the input (single
	// partition).
	partSizes := []int{7, 64, 1021, 1 << 20}

	for _, tc := range cases {
		whole, err := Parse(tc.data, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range tc.modes {
			for _, ps := range partSizes {
				t.Run(fmt.Sprintf("%s/%s/part=%d", tc.name, mode, ps), func(t *testing.T) {
					opts := tc.opts
					opts.Mode = mode
					src := &maxReadReader{t: t, r: bytes.NewReader(tc.data), limit: ps}
					res, err := StreamReader(src, StreamOptions{
						Options:       opts,
						PartitionSize: ps,
						Bus:           NewBus(BusConfig{TimeScale: 1e6}),
					})
					if err != nil {
						t.Fatal(err)
					}
					combined, err := res.Combined()
					if err != nil {
						t.Fatal(err)
					}
					assertTablesEqual(t, "streamed", combined, whole.Table)
					// A detected byte-order mark (up to 3 bytes) is
					// stripped before the pipeline and not counted.
					if res.Stats.InputBytes < int64(len(tc.data))-3 || res.Stats.InputBytes > int64(len(tc.data)) {
						t.Errorf("InputBytes = %d, want ~%d", res.Stats.InputBytes, len(tc.data))
					}
				})
			}
		}
	}
}

// TestStreamReaderTinyFirstPartition drives partitions far smaller than
// the header record plus skipped rows: the first-partition handling
// must keep carrying input until the header and a complete record fit,
// instead of consuming a mangled partial header or freezing an empty
// schema.
func TestStreamReaderTinyFirstPartition(t *testing.T) {
	var sb bytes.Buffer
	sb.WriteString("# generated\n")
	sb.WriteString("alpha,beta,gamma\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "%d,\"v %d\",%d.5\n", i, i, i)
	}
	input := sb.Bytes()
	opts := Options{HasHeader: true, SkipRows: 1}

	whole, err := Parse(input, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []int{3, 5, 11} {
		res, err := StreamReader(bytes.NewReader(input), StreamOptions{
			Options:       opts,
			PartitionSize: ps,
			Bus:           NewBus(BusConfig{TimeScale: 1e6}),
		})
		if err != nil {
			t.Fatalf("part=%d: %v", ps, err)
		}
		if strings.Join(res.Header, ",") != "alpha,beta,gamma" {
			t.Fatalf("part=%d: header = %v", ps, res.Header)
		}
		combined, err := res.Combined()
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, fmt.Sprintf("part=%d", ps), combined, whole.Table)
	}
}

// TestStreamReaderShortReads feeds the pipeline through a reader that
// returns a few bytes per call: partial reads must not change the
// partition boundaries or the output.
func TestStreamReaderShortReads(t *testing.T) {
	var sb bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d,text %d,%d.75\n", i, i, i)
	}
	input := sb.Bytes()
	whole, err := Parse(input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := StreamReader(&shortReadReader{r: bytes.NewReader(input), k: 13}, StreamOptions{
		PartitionSize: 256,
		Bus:           NewBus(BusConfig{TimeScale: 1e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions < 4 {
		t.Fatalf("partitions = %d, want several", res.Stats.Partitions)
	}
	combined, err := res.Combined()
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "short-reads", combined, whole.Table)
}

// TestStreamReaderCommentHeavyInput streams a file whose comment lines
// vastly outnumber data records (comment newlines leave no record
// footprint in the DFA): the output must match Parse.
func TestStreamReaderCommentHeavyInput(t *testing.T) {
	f := NewCSV(CSV{Delimiter: ',', Comment: '#'})
	var sb bytes.Buffer
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "# comment line %d\n", i)
		if i%10 == 0 {
			fmt.Fprintf(&sb, "%d,%d\n", i, i*2)
		}
	}
	input := sb.Bytes()
	whole, err := Parse(input, Options{Format: f})
	if err != nil {
		t.Fatal(err)
	}
	res, err := StreamReader(bytes.NewReader(input), StreamOptions{
		Options:       Options{Format: f},
		PartitionSize: 128,
		Bus:           NewBus(BusConfig{TimeScale: 1e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := res.Combined()
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "comment-heavy", combined, whole.Table)
}

// TestStreamReaderRowlessPrefixBoundedCarry drives a first partition
// whose complete records are all dropped (SkipRecords): completed
// rowless records must be consumed, not carried — the carry-over stays
// bounded instead of accumulating the whole prefix (the
// larger-than-memory contract).
func TestStreamReaderRowlessPrefixBoundedCarry(t *testing.T) {
	skip := make([]int64, 1000)
	for i := range skip {
		skip[i] = int64(i)
	}
	input := bytes.Repeat([]byte("x\n"), 2000)
	const partSize = 64
	res, err := StreamReader(bytes.NewReader(input), StreamOptions{
		Options:       Options{SkipRecords: skip},
		PartitionSize: partSize,
		Bus:           NewBus(BusConfig{TimeScale: 1e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxCarryOver > 4*partSize {
		t.Fatalf("max carry-over = %d for a rowless prefix; completed records are being re-carried",
			res.Stats.MaxCarryOver)
	}
}

// TestStreamReaderReportsInvalidInput checks the non-erroring
// validation signal survives the streaming route — including through
// ParseReader's above-threshold path.
func TestStreamReaderReportsInvalidInput(t *testing.T) {
	var sb bytes.Buffer
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d,ok\n", i)
	}
	sb.WriteString("bad\"quote\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d,ok\n", i)
	}
	input := sb.Bytes()

	res, err := StreamReader(bytes.NewReader(input), StreamOptions{
		PartitionSize: 256,
		Bus:           NewBus(BusConfig{TimeScale: 1e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.InvalidInput {
		t.Error("StreamReader did not flag the invalid partition")
	}

	defer func(old int) { ReaderStreamThreshold = old }(ReaderStreamThreshold)
	ReaderStreamThreshold = 512
	pres, err := ParseReader(bytes.NewReader(input), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Stats.InvalidInput {
		t.Error("ParseReader's streamed route dropped Stats.InvalidInput")
	}
}

// TestStreamReaderEmptyAndHeaderOnly covers the degenerate inputs a
// service sees: empty sources and sources containing only a header.
func TestStreamReaderEmptyAndHeaderOnly(t *testing.T) {
	res, err := StreamReader(strings.NewReader(""), StreamOptions{
		PartitionSize: 64,
		Bus:           NewBus(BusConfig{TimeScale: 1e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Errorf("empty input rows = %d", res.NumRows())
	}

	res, err = StreamReader(strings.NewReader("a,b\n"), StreamOptions{
		Options:       Options{HasHeader: true},
		PartitionSize: 2,
		Bus:           NewBus(BusConfig{TimeScale: 1e6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Header, ",") != "a,b" {
		t.Errorf("header = %v", res.Header)
	}
	if res.NumRows() != 0 {
		t.Errorf("header-only rows = %d", res.NumRows())
	}
}
