package parparaw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/testleak"
	"repro/parparawerr"
)

// fault_test.go is the chaos parity suite: every fault class the
// taxonomy names — transient and permanent reader failures, short
// reads, stalls, worker panics in the ring and the convert pool, and
// device-budget pressure — is injected deterministically (package
// faultinject) across ring depths and tagging modes, and each run must
// end in exactly one of the contract's outcomes: byte-identical output
// when every fault is retryable, a typed error the caller can
// errors.Is, or a clean quarantine. Every scenario also asserts the
// engine stays usable afterwards (arenas recycled, no goroutine leak).

func chaosBus() *Bus { return NewBus(BusConfig{TimeScale: 1e9, Latency: -1}) }

func chaosInput(records int) []byte {
	var sb bytes.Buffer
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb, "%d,row-%d,%d.5,%v\n", i, i*7, i%97, i%3 == 0)
	}
	return sb.Bytes()
}

func chaosDepths() []int { return dedupWorkerCounts(1, 2, runtime.GOMAXPROCS(0)) }

// chaosRetry is the policy the suite uses when faults are supposed to
// be survivable: generous attempts, no real sleeping (BaseDelay at the
// floor), transient-only classification.
func chaosRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   time.Nanosecond,
		MaxDelay:    time.Nanosecond,
		Retryable:   faultinject.IsTransient,
	}
}

// TestFaultTransientReadsParity: with every injected fault retryable
// (transient errors, short reads), a retried run must produce output
// byte-identical to the fault-free run — across tagging modes and ring
// depths.
func TestFaultTransientReadsParity(t *testing.T) {
	input := chaosInput(3000)
	base := testleak.Count()
	for _, mode := range []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited} {
		eng, err := NewEngine(Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Stream(input, StreamConfig{PartitionSize: 4 << 10, Bus: chaosBus()})
		if err != nil {
			t.Fatalf("mode=%v: fault-free reference: %v", mode, err)
		}
		if want.NumRows() != 3000 {
			t.Fatalf("mode=%v: reference rows = %d", mode, want.NumRows())
		}
		for _, inFlight := range chaosDepths() {
			for seed := uint64(1); seed <= 3; seed++ {
				label := fmt.Sprintf("mode=%v inflight=%d seed=%d", mode, inFlight, seed)
				fr := &faultinject.FlakyReader{
					R:              bytes.NewReader(input),
					Seed:           seed,
					TransientEvery: 4,
					ShortReads:     true,
				}
				got, err := eng.StreamReader(fr, StreamConfig{
					PartitionSize: 4 << 10,
					Bus:           chaosBus(),
					InFlight:      inFlight,
					Retry:         chaosRetry(),
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertStreamsIdentical(t, label, got, want)
				if got.Stats.Retries == 0 {
					t.Errorf("%s: no retries recorded despite TransientEvery=4", label)
				}
			}
		}
	}
	testleak.After(t, base)
}

// TestFaultPermanentReadTyped: a reader that dies for good must surface
// as a typed ErrInput carrying the exact number of bytes consumed, at
// every ring depth, with partial results intact.
func TestFaultPermanentReadTyped(t *testing.T) {
	input := chaosInput(3000)
	base := testleak.Count()
	for _, inFlight := range chaosDepths() {
		eng, err := NewEngine(Options{})
		if err != nil {
			t.Fatal(err)
		}
		fr := &faultinject.FlakyReader{
			R:           bytes.NewReader(input),
			Seed:        7,
			PermanentAt: int64(len(input) / 2),
		}
		res, err := eng.StreamReader(fr, StreamConfig{
			PartitionSize: 4 << 10,
			Bus:           chaosBus(),
			InFlight:      inFlight,
			Retry:         chaosRetry(),
		})
		if !errors.Is(err, parparawerr.ErrInput) {
			t.Fatalf("inflight=%d: err = %v, want ErrInput", inFlight, err)
		}
		var ie *parparawerr.InputError
		if !errors.As(err, &ie) {
			t.Fatalf("inflight=%d: no *InputError in chain: %v", inFlight, err)
		}
		if ie.Offset != fr.Delivered() {
			t.Errorf("inflight=%d: InputError.Offset = %d, reader delivered %d", inFlight, ie.Offset, fr.Delivered())
		}
		if res == nil {
			t.Errorf("inflight=%d: no partial result alongside the typed error", inFlight)
		}
		// The engine must stay usable after the failed run.
		if clean, err := eng.Stream(input, StreamConfig{PartitionSize: 4 << 10, Bus: chaosBus(), InFlight: inFlight}); err != nil {
			t.Errorf("inflight=%d: engine broken after read failure: %v", inFlight, err)
		} else if clean.NumRows() != 3000 {
			t.Errorf("inflight=%d: post-failure run rows = %d", inFlight, clean.NumRows())
		}
	}
	testleak.After(t, base)
}

// armOneShotRingPanic arms the ring-parse hook to panic exactly once,
// on the given partition. Returns a func reporting whether it fired.
func armOneShotRingPanic(t *testing.T, partition int, msg string) func() bool {
	t.Helper()
	var fired atomic.Bool
	faultinject.SetRingParse(func(p int) {
		if p == partition && fired.CompareAndSwap(false, true) {
			panic(msg)
		}
	})
	t.Cleanup(func() { faultinject.SetRingParse(nil) })
	return fired.Load
}

// TestFaultRingPanicTyped: a panic inside a partition parse must be
// contained into a typed ErrInternal carrying the partition index and a
// stack, never crash the process, and leave the engine usable.
func TestFaultRingPanicTyped(t *testing.T) {
	input := chaosInput(3000)
	base := testleak.Count()
	for _, inFlight := range chaosDepths() {
		t.Run(fmt.Sprintf("inflight=%d", inFlight), func(t *testing.T) {
			fired := armOneShotRingPanic(t, 2, "injected ring panic")
			eng, err := NewEngine(Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Stream(input, StreamConfig{
				PartitionSize: 4 << 10,
				Bus:           chaosBus(),
				InFlight:      inFlight,
			})
			if !fired() {
				t.Fatal("panic hook never fired; partition numbering changed?")
			}
			if !errors.Is(err, parparawerr.ErrInternal) {
				t.Fatalf("err = %v, want ErrInternal", err)
			}
			var ine *parparawerr.InternalError
			if !errors.As(err, &ine) {
				t.Fatalf("no *InternalError in chain: %v", err)
			}
			if ine.Partition != 2 {
				t.Errorf("InternalError.Partition = %d, want 2", ine.Partition)
			}
			if fmt.Sprint(ine.Value) != "injected ring panic" {
				t.Errorf("InternalError.Value = %v", ine.Value)
			}
			if len(ine.Stack) == 0 {
				t.Error("InternalError.Stack is empty")
			}
			if res == nil {
				t.Error("no partial result alongside the contained panic")
			}
			faultinject.SetRingParse(nil)
			if clean, err := eng.Stream(input, StreamConfig{PartitionSize: 4 << 10, Bus: chaosBus(), InFlight: inFlight}); err != nil {
				t.Errorf("engine broken after contained panic: %v", err)
			} else if clean.NumRows() != 3000 {
				t.Errorf("post-panic run rows = %d", clean.NumRows())
			}
		})
	}
	testleak.After(t, base)
}

// TestFaultRingPanicQuarantine: the same injected panic under
// SkipBadPartitions must quarantine the one partition and finish the
// stream. On the ring's pre-scanned path the surviving partitions are
// byte-identical to the fault-free run's; the serial carry path drops
// the pending carry with the partition (documented head-clipping), so
// there the assertions are on counts, not bytes.
func TestFaultRingPanicQuarantine(t *testing.T) {
	input := chaosInput(3000)
	base := testleak.Count()
	eng, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Stream(input, StreamConfig{PartitionSize: 4 << 10, Bus: chaosBus()})
	if err != nil {
		t.Fatal(err)
	}
	for _, inFlight := range chaosDepths() {
		t.Run(fmt.Sprintf("inflight=%d", inFlight), func(t *testing.T) {
			fired := armOneShotRingPanic(t, 2, "injected quarantine panic")
			res, err := eng.Stream(input, StreamConfig{
				PartitionSize:     4 << 10,
				Bus:               chaosBus(),
				InFlight:          inFlight,
				SkipBadPartitions: true,
			})
			if !fired() {
				t.Fatal("panic hook never fired")
			}
			if err != nil {
				t.Fatalf("quarantine run failed: %v", err)
			}
			if res.Stats.QuarantinedPartitions != 1 {
				t.Fatalf("quarantined partitions = %d, want 1", res.Stats.QuarantinedPartitions)
			}
			if inFlight > 1 {
				// Pre-scanned boundary: the carry chain is intact, so the
				// output is exactly the fault-free run minus partition 2.
				if len(res.Tables) != len(want.Tables)-1 {
					t.Fatalf("%d tables, want %d (reference minus the quarantined one)",
						len(res.Tables), len(want.Tables)-1)
				}
				for i, tbl := range res.Tables {
					ref := i
					if i >= 2 {
						ref = i + 1
					}
					assertTablesIdentical(t, fmt.Sprintf("surviving partition %d", ref), tbl, want.Tables[ref])
				}
			} else {
				if res.NumRows() >= want.NumRows() {
					t.Errorf("rows = %d, want < %d (a partition was dropped)", res.NumRows(), want.NumRows())
				}
			}
		})
	}
	testleak.After(t, base)
}

// TestFaultConvertPanic: a panic inside a convert-pool worker is
// contained into ErrInternal (stage "convert"), or a clean quarantine
// under SkipBadPartitions.
func TestFaultConvertPanic(t *testing.T) {
	input := chaosInput(3000)
	base := testleak.Count()
	for _, inFlight := range chaosDepths() {
		for _, skip := range []bool{false, true} {
			t.Run(fmt.Sprintf("inflight=%d skip=%v", inFlight, skip), func(t *testing.T) {
				var fired atomic.Bool
				faultinject.SetConvertColumn(func(col int) {
					if fired.CompareAndSwap(false, true) {
						panic("injected convert panic")
					}
				})
				t.Cleanup(func() { faultinject.SetConvertColumn(nil) })
				eng, err := NewEngine(Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Stream(input, StreamConfig{
					PartitionSize:     4 << 10,
					Bus:               chaosBus(),
					InFlight:          inFlight,
					SkipBadPartitions: skip,
				})
				if !fired.Load() {
					t.Fatal("convert hook never fired")
				}
				if skip {
					if err != nil {
						t.Fatalf("quarantine run failed: %v", err)
					}
					if res.Stats.QuarantinedPartitions != 1 {
						t.Errorf("quarantined partitions = %d, want 1", res.Stats.QuarantinedPartitions)
					}
				} else {
					if !errors.Is(err, parparawerr.ErrInternal) {
						t.Fatalf("err = %v, want ErrInternal", err)
					}
					var ine *parparawerr.InternalError
					if !errors.As(err, &ine) {
						t.Fatalf("no *InternalError in chain: %v", err)
					}
					if ine.Stage != "convert" {
						t.Errorf("InternalError.Stage = %q, want \"convert\"", ine.Stage)
					}
				}
				faultinject.SetConvertColumn(nil)
				if clean, err := eng.Stream(input, StreamConfig{PartitionSize: 4 << 10, Bus: chaosBus(), InFlight: inFlight}); err != nil {
					t.Errorf("engine broken after convert panic: %v", err)
				} else if clean.NumRows() != 3000 {
					t.Errorf("post-panic run rows = %d", clean.NumRows())
				}
			})
		}
	}
	testleak.After(t, base)
}

// TestFaultBudgetPressure: the arena-pressure hook inflates every
// partition's footprint estimate past the budget. Strict mode must fail
// with a typed ErrBudget; lenient mode must still complete with output
// identical to the unpressured run (one partition always admitted).
func TestFaultBudgetPressure(t *testing.T) {
	input := chaosInput(3000)
	base := testleak.Count()
	faultinject.SetBudgetCharge(func(partition int, est int64) int64 { return est + (1 << 40) })
	t.Cleanup(func() { faultinject.SetBudgetCharge(nil) })
	eng, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Stream(input, StreamConfig{PartitionSize: 4 << 10, Bus: chaosBus()})
	if err != nil {
		t.Fatal(err)
	}

	// Strict: the inflated estimate alone exceeds the budget -> typed failure.
	_, err = eng.Stream(input, StreamConfig{
		PartitionSize: 4 << 10,
		Bus:           chaosBus(),
		InFlight:      4,
		DeviceBudget:  1 << 20,
		StrictBudget:  true,
	})
	if !errors.Is(err, parparawerr.ErrBudget) {
		t.Fatalf("strict: err = %v, want ErrBudget", err)
	}
	var be *parparawerr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("strict: no *BudgetError in chain: %v", err)
	}
	if be.Estimate <= be.Budget {
		t.Errorf("strict: Estimate %d <= Budget %d", be.Estimate, be.Budget)
	}

	// Lenient: throttled to one partition at a time, but complete and identical.
	got, err := eng.Stream(input, StreamConfig{
		PartitionSize: 4 << 10,
		Bus:           chaosBus(),
		InFlight:      4,
		DeviceBudget:  1 << 20,
	})
	if err != nil {
		t.Fatalf("lenient: %v", err)
	}
	assertStreamsIdentical(t, "budget-pressure lenient", got, want)
	testleak.After(t, base)
}

// TestFaultStalledReaderDeadline: stalls in the reader plus a deadline
// — the run must end with a typed ErrCanceled (DeadlineExceeded
// reachable via errors.Is) and partial stats, never hang.
func TestFaultStalledReaderDeadline(t *testing.T) {
	input := chaosInput(20000)
	base := testleak.Count()
	fr := &faultinject.FlakyReader{
		R:     bytes.NewReader(input),
		Seed:  3,
		Stall: 2 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Millisecond)
	defer cancel()
	eng, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.StreamReaderContext(ctx, fr, StreamConfig{
		PartitionSize: 2 << 10,
		Bus:           chaosBus(),
		InFlight:      2,
	})
	if err == nil {
		t.Skip("run beat the deadline; nothing to assert")
	}
	if !errors.Is(err, parparawerr.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled unwrapping to DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("no partial result alongside the cancellation")
	}
	testleak.After(t, base)
}

// TestFaultOnBadRecordDivert: malformed records (inconsistent column
// counts) are diverted to OnBadRecord with raw bytes and offsets that
// index back into the original input, at every ring depth.
func TestFaultOnBadRecordDivert(t *testing.T) {
	var sb bytes.Buffer
	badOffsets := map[int64]string{}
	for i := 0; i < 2000; i++ {
		if i%97 == 13 {
			line := fmt.Sprintf("%d,broken-%d", i, i) // 2 columns instead of 4
			badOffsets[int64(sb.Len())] = line
			sb.WriteString(line)
			sb.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&sb, "%d,row-%d,%d.5,%v\n", i, i*7, i%97, i%3 == 0)
	}
	input := sb.Bytes()
	base := testleak.Count()
	for _, inFlight := range chaosDepths() {
		eng, err := NewEngine(Options{RejectInconsistent: true})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		got := map[int64]string{}
		res, err := eng.Stream(input, StreamConfig{
			PartitionSize: 4 << 10,
			Bus:           chaosBus(),
			InFlight:      inFlight,
			OnBadRecord: func(r BadRecord) {
				mu.Lock()
				got[r.Offset] = string(r.Raw)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("inflight=%d: %v", inFlight, err)
		}
		if len(got) != len(badOffsets) {
			t.Fatalf("inflight=%d: %d bad records diverted, want %d", inFlight, len(got), len(badOffsets))
		}
		for off, raw := range badOffsets {
			if got[off] != raw {
				t.Errorf("inflight=%d: offset %d = %q, want %q", inFlight, off, got[off], raw)
			}
		}
		if res.Stats.QuarantinedRecords != int64(len(badOffsets)) {
			t.Errorf("inflight=%d: QuarantinedRecords = %d, want %d",
				inFlight, res.Stats.QuarantinedRecords, len(badOffsets))
		}
	}
	testleak.After(t, base)
}
