package parparaw

// Tests for the device-memory arena story: Parse vs Stream parity across
// tagging modes and encodings (partition boundaries must be invisible),
// and the allocation-regression guarantee that steady-state streaming
// partitions reuse the first partition's device buffers instead of
// growing the arena.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/stream"
)

// parityInput describes one corpus entry for the Parse/Stream parity
// sweep.
type parityInput struct {
	name  string
	data  []byte
	opts  Options
	modes []TaggingMode
}

func parityCorpus() []parityInput {
	allModes := []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited}

	var quoted bytes.Buffer
	for i := 0; i < 400; i++ {
		quoted.WriteString("17,\"quoted, with\ndelims\",3.25\n")
	}

	// Ragged column counts require RecordTagged. The widest record leads
	// so the first partition already sees the full column count (the
	// streaming pipeline freezes partition 0's schema for the rest).
	var ragged bytes.Buffer
	ragged.WriteString("a,b,c,d\n")
	for i := 0; i < 1500; i++ {
		switch i % 3 {
		case 0:
			ragged.WriteString("1,2\n")
		case 1:
			ragged.WriteString("3,4,5,6\n")
		default:
			ragged.WriteString("7\n")
		}
	}

	// UTF-16 with multi-byte and surrogate-pair content; odd partition
	// sizes split code units and surrogate pairs across partitions.
	var utf16 strings.Builder
	for i := 0; i < 200; i++ {
		utf16.WriteString("héllo,wörld 🚀,42\nπ,ÿFD,7\n")
	}

	return []parityInput{
		{name: "quoted", data: quoted.Bytes(), modes: allModes},
		{name: "ragged", data: ragged.Bytes(), modes: []TaggingMode{RecordTagged}},
		{
			name:  "utf16",
			data:  encodeUTF16LE(utf16.String(), false),
			opts:  Options{Encoding: UTF16LE},
			modes: allModes,
		},
		{
			// The BOM exists only at the head of the first partition; the
			// detected encoding must be frozen for all later partitions.
			name:  "utf16-bom-detect",
			data:  encodeUTF16LE(utf16.String(), true),
			opts:  Options{DetectEncoding: true},
			modes: []TaggingMode{RecordTagged},
		},
	}
}

// TestStreamParityAcrossModes checks that Stream(...).Combined() is
// cell-for-cell identical to Parse for every tagging mode on quoted,
// ragged, and UTF-16 inputs — partition boundaries (including ones that
// split quoted fields, records, and UTF-16 code units) must not change
// the output.
func TestStreamParityAcrossModes(t *testing.T) {
	for _, in := range parityCorpus() {
		for _, mode := range in.modes {
			t.Run(in.name+"/"+mode.String(), func(t *testing.T) {
				opts := in.opts
				opts.Mode = mode
				whole, err := Parse(in.data, opts)
				if err != nil {
					t.Fatal(err)
				}
				// 1021 is odd and prime: partitions end mid-record, mid-quote
				// and mid-code-unit.
				streamed, err := Stream(in.data, StreamOptions{
					Options:       opts,
					PartitionSize: 1021,
					Bus:           NewBus(BusConfig{TimeScale: 1e6}),
				})
				if err != nil {
					t.Fatal(err)
				}
				if streamed.Stats.Partitions < 3 {
					t.Fatalf("partitions = %d, want several", streamed.Stats.Partitions)
				}
				combined, err := streamed.Combined()
				if err != nil {
					t.Fatal(err)
				}
				if got, want := combined.NumRows(), whole.Table.NumRows(); got != want {
					t.Fatalf("rows = %d, want %d", got, want)
				}
				if got, want := combined.NumColumns(), whole.Table.NumColumns(); got != want {
					t.Fatalf("columns = %d, want %d", got, want)
				}
				for c := 0; c < whole.Table.NumColumns(); c++ {
					w, g := whole.Table.Column(c), combined.Column(c)
					for r := 0; r < whole.Table.NumRows(); r++ {
						if w.IsNull(r) != g.IsNull(r) {
							t.Fatalf("row %d col %d: null %v vs %v", r, c, g.IsNull(r), w.IsNull(r))
						}
						if !w.IsNull(r) && w.ValueString(r) != g.ValueString(r) {
							t.Fatalf("row %d col %d: %q, want %q", r, c, g.ValueString(r), w.ValueString(r))
						}
					}
				}
				if streamed.Stats.DeviceBytes <= 0 {
					t.Errorf("DeviceBytes = %d, want > 0", streamed.Stats.DeviceBytes)
				}
			})
		}
	}
}

// largeAlloc is the acceptance threshold: steady-state partitions must
// not perform any allocation of this size or larger.
const largeAlloc = 1 << 20

// TestParseSteadyStateArenaFixed parses the same input repeatedly
// through one arena (reset between runs, as the streaming pipeline
// does) and checks the arena stops acquiring memory after the first
// run. Small slack is allowed for scheduling-dependent scan slabs; any
// recycled-buffer regression on an O(input) buffer trips the 1 MiB
// bound immediately.
func TestParseSteadyStateArenaFixed(t *testing.T) {
	input := bytes.Repeat([]byte("123,abcdefgh,4.5,true\n"), 100_000) // ~2.2 MB
	arena := device.NewArena()
	opts := core.Options{Arena: arena}
	if _, err := core.Parse(input, opts); err != nil {
		t.Fatal(err)
	}
	afterFirst := arena.ReservedBytes()
	for i := 0; i < 4; i++ {
		arena.Reset()
		if _, err := core.Parse(input, opts); err != nil {
			t.Fatal(err)
		}
	}
	growth := arena.ReservedBytes() - afterFirst
	if growth >= largeAlloc {
		t.Fatalf("arena grew %d bytes across steady-state runs (limit %d); reserved %d after first run",
			growth, largeAlloc, afterFirst)
	}
	total, reused := arena.Allocs()
	if reused == 0 || reused < total/2 {
		t.Errorf("arena reuse too low: %d of %d allocations recycled", reused, total)
	}
}

// TestStreamSteadyStateNoLargeAllocs drives the real streaming pipeline
// (internal/stream.Run with a shared arena, exactly as the public
// Stream does) over many partitions and checks that no partition after
// the first acquires a large (>= 1 MiB) device buffer: the §4.4
// fixed-footprint property.
func TestStreamSteadyStateNoLargeAllocs(t *testing.T) {
	input := bytes.Repeat([]byte("123,abcdefgh,4.5,true\n"), 400_000) // ~8.8 MB -> 8 partitions
	arena := device.NewArena()
	var afterFirst int64
	first := true
	parser := stream.ParserFunc(func(part stream.Partition) (stream.PartitionResult, error) {
		trailing := core.TrailingRemainder
		if part.Final {
			trailing = core.TrailingRecord
		}
		res, err := core.Parse(part.Input, core.Options{Arena: arena, Trailing: trailing})
		if err != nil {
			return stream.PartitionResult{}, err
		}
		if first {
			afterFirst = arena.ReservedBytes()
			first = false
		}
		return stream.PartitionResult{Table: res.Table, CompleteBytes: len(part.Input) - res.Remainder}, nil
	})
	res, err := stream.Run(stream.Config{PartitionSize: 1 << 20, Arena: arena}, parser, stream.BytesSource(input))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions < 4 {
		t.Fatalf("partitions = %d, want several", res.Stats.Partitions)
	}
	growth := arena.ReservedBytes() - afterFirst
	if growth >= largeAlloc {
		t.Fatalf("arena grew %d bytes after the first partition (limit %d)", growth, largeAlloc)
	}
	if res.Stats.DeviceBytes != arena.PeakBytes() {
		t.Errorf("stats DeviceBytes = %d, arena peak = %d", res.Stats.DeviceBytes, arena.PeakBytes())
	}
	// The whole run's peak footprint must stay at the first partition's
	// level: recycling, not accumulation across partitions.
	if res.Stats.DeviceBytes >= afterFirst+largeAlloc {
		t.Errorf("device footprint %d exceeds first partition's %d; partitions are not reusing buffers",
			res.Stats.DeviceBytes, afterFirst)
	}
}
