package parparaw

import (
	"time"

	"repro/internal/columnar"
)

// Table is the columnar parse output: one Column per schema field, all
// of equal row count, in an Apache-Arrow-style memory layout (validity
// bitmap + data buffer, plus an offsets buffer for strings).
type Table struct {
	t *columnar.Table
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return schemaFromInternal(t.t.Schema()) }

// NumRows returns the record count.
func (t *Table) NumRows() int { return t.t.NumRows() }

// NumColumns returns the column count.
func (t *Table) NumColumns() int { return t.t.NumColumns() }

// Column returns column i.
func (t *Table) Column(i int) *Column { return &Column{c: t.t.Column(i)} }

// ColumnByName returns the first column with the given name, or nil.
func (t *Table) ColumnByName(name string) *Column {
	for i, f := range t.t.Schema().Fields {
		if f.Name == name {
			return t.Column(i)
		}
	}
	return nil
}

// Rejected reports whether record i was rejected (Options.RejectInconsistent
// or Options.RejectMalformed). Rejected records keep their row slot with
// NULL values so record numbering is stable.
func (t *Table) Rejected(i int) bool { return t.t.Rejected(i) }

// RejectedCount returns the number of rejected records.
func (t *Table) RejectedCount() int { return t.t.RejectedCount() }

// DataBytes returns the total bytes of materialised column data — the
// volume a device-to-host transfer of the parsed output would move.
func (t *Table) DataBytes() int64 { return t.t.DataBytes() }

// Column is one materialised output column.
type Column struct {
	c *columnar.Column
}

// Name returns the column name.
func (c *Column) Name() string { return c.c.Field().Name }

// Type returns the column type.
func (c *Column) Type() Type { return typeFromInternal(c.c.Field().Type) }

// Len returns the row count.
func (c *Column) Len() int { return c.c.Len() }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.c.IsNull(i) }

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int { return c.c.NullCount() }

// Int64 returns row i of an Int64, Date32 (days), or TimestampMicros
// (microseconds) column.
func (c *Column) Int64(i int) int64 { return c.c.Int64Value(i) }

// Float64 returns row i of a Float64 column.
func (c *Column) Float64(i int) float64 { return c.c.Float64Value(i) }

// Bool returns row i of a Bool column.
func (c *Column) Bool(i int) bool { return c.c.BoolValue(i) }

// Bytes returns row i of a String column without copying. The slice
// aliases the column's data buffer and must not be modified.
func (c *Column) Bytes(i int) []byte { return c.c.StringValue(i) }

// StringValue returns row i of a String column as a Go string.
func (c *Column) StringValue(i int) string { return string(c.c.StringValue(i)) }

// Time returns row i of a Date32 or TimestampMicros column as a UTC
// time.Time.
func (c *Column) Time(i int) time.Time {
	switch c.c.Field().Type {
	case columnar.Date32:
		return time.Unix(c.c.Int64Value(i)*86400, 0).UTC()
	case columnar.TimestampMicros:
		us := c.c.Int64Value(i)
		return time.Unix(us/1e6, (us%1e6)*1000).UTC()
	default:
		return time.Time{}
	}
}

// ValueString formats row i for display, whatever the column type.
func (c *Column) ValueString(i int) string { return c.c.ValueString(i) }

// ValidityPacked exports the validity as an Arrow-style packed bitmap
// (bit i of byte i/8 set = valid), or nil when no row is NULL.
func (c *Column) ValidityPacked() []byte { return c.c.ValidityPacked() }
