package parparaw

import (
	"errors"

	"repro/internal/convert"
)

// errSelectConflict reports the ambiguous configuration of both
// projection spellings at once.
var errSelectConflict = errors.New("parparaw: both SelectColumns and Scan.Select set; use one")

// ScanOptions is the projection/predicate pushdown surface (§4.3
// extended): which columns a parse should materialise and which rows it
// should keep, expressed so the compiled plan can prune the work instead
// of the caller pruning the output.
//
// Projection (Select) marks every other column's symbols irrelevant
// before partitioning: they cost the DFA walk and a histogram increment,
// but are never moved, indexed, type-inferred, or materialised.
// Predicates (Where) are evaluated against raw field bytes right after
// the offset scans; with a fixed Schema, failing rows are pruned before
// the partition and convert stages ever see them (predicate pushdown),
// so a 1%-selectivity scan moves ~1% of the data. With an inferred
// schema — where types must be derived from every row — and under
// NoPushdown, the same predicates are evaluated at the same point but
// applied to the materialised table instead; output is byte-identical
// either way.
type ScanOptions struct {
	// Select keeps only the listed column indices, in the given order.
	// Nil keeps all columns. It is the same projection as
	// Options.SelectColumns (setting both is a configuration error);
	// it lives here too so a scan's shape reads as one value.
	Select []int
	// Where lists row predicates combined by AND: a row is kept only if
	// every predicate holds. Build them with Eq, Ne, Prefix, IsNull,
	// NotNull, IntRange, and FloatRange. Predicates may reference
	// columns outside Select — filtering does not require materialising.
	Where []Predicate
	// NoPushdown forces the post-materialisation pruning path for Where
	// even when a Schema is present. Output is identical; only where the
	// rows are dropped changes. It exists as the pushdown-on/off
	// ablation axis and as the parity/fuzz reference path.
	NoPushdown bool
}

// Predicate is one raw-byte row filter of ScanOptions.Where. The value
// a predicate sees is exactly the field value the convert stage would
// materialise: the field's bytes with control symbols (quotes, carriage
// returns) removed, the column's DefaultValues entry substituted when
// the field is empty, and fields missing from ragged records treated as
// empty. For UTF-16 inputs the bytes are the transcoded UTF-8. Numeric
// range predicates parse with the same SWAR validate-then-convert
// parsers as the convert stage (bit-exact with the scalar reference);
// unparseable or empty fields fail a range predicate.
type Predicate struct {
	p convert.Predicate
}

// Column returns the input column index the predicate reads
// (pre-selection numbering, like SelectColumns).
func (p Predicate) Column() int { return p.p.Column }

// Eq keeps rows whose field bytes in column equal value exactly.
func Eq(column int, value string) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredEq, Value: []byte(value)}}
}

// Ne keeps rows whose field bytes in column differ from value.
func Ne(column int, value string) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredNe, Value: []byte(value)}}
}

// Prefix keeps rows whose field bytes in column start with prefix.
func Prefix(column int, prefix string) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredPrefix, Value: []byte(prefix)}}
}

// IsNull keeps rows whose field in column is empty (or missing) after
// default-value substitution — a raw-byte test independent of the
// column's type (it does not match NULLs from failed conversions).
func IsNull(column int) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredIsNull}}
}

// NotNull keeps rows whose field in column is non-empty after
// default-value substitution.
func NotNull(column int) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredNotNull}}
}

// IntRange keeps rows whose field in column parses as an integer in
// [lo, hi]. Unparseable or empty fields fail the predicate.
func IntRange(column int, lo, hi int64) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredIntRange, IntLo: lo, IntHi: hi}}
}

// FloatRange keeps rows whose field in column parses as a float in
// [lo, hi]. Unparseable or empty fields fail the predicate.
func FloatRange(column int, lo, hi float64) Predicate {
	return Predicate{convert.Predicate{Column: column, Op: convert.PredFloatRange, FloatLo: lo, FloatHi: hi}}
}

// internal unwraps the Where list for the core options.
func (s ScanOptions) internalWhere() []convert.Predicate {
	if len(s.Where) == 0 {
		return nil
	}
	out := make([]convert.Predicate, len(s.Where))
	for i, p := range s.Where {
		out[i] = p.p
	}
	return out
}
