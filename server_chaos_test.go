package parparaw

// Chaos/soak suite for the ingestion daemon: a thousand requests
// through flaky bodies, permanent failures, and mid-request
// disconnects, concurrently across tenants. The contracts under test:
// transient faults are retried invisibly, failures answer typed
// partial-result responses (never a 5xx for a client fault), goroutines
// and arena pools balance after the storm, and per-tenant statistics
// never bleed across tenants — each tenant's counters equal what that
// tenant's own responses reported.

import (
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/testleak"
)

// permanentAfter is an io.Reader that delivers n bytes of r and then
// fails every call with a permanent injected error — the client whose
// upload dies mid-flight.
type permanentAfter struct {
	r    io.Reader
	left int
}

func (p *permanentAfter) Read(b []byte) (int, error) {
	if p.left <= 0 {
		return 0, &faultinject.PermanentError{Seq: 1}
	}
	if len(b) > p.left {
		b = b[:p.left]
	}
	n, err := p.r.Read(b)
	p.left -= n
	return n, err
}

// TestServerChaosSoak is the long soak: every request body goes through
// a deterministic FlakyReader (transient errors + short reads) cleared
// by the server's retry policy; a slice of requests die permanently or
// are canceled mid-flight. 1000 requests (200 under -short) across 3
// tenants and 2 dialects, 8 at a time.
func TestServerChaosSoak(t *testing.T) {
	base := testleak.Count()

	var seed atomic.Uint64
	srv := NewServer(ServerConfig{
		Retry: RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   100 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			Retryable:   faultinject.IsTransient,
		},
		WrapBody: func(r io.Reader) io.Reader {
			return &faultinject.FlakyReader{
				R:              r,
				Seed:           seed.Add(1),
				TransientEvery: 4,
				ShortReads:     true,
			}
		},
	})

	requests := 1000
	if testing.Short() {
		requests = 200
	}
	tenants := []string{"red", "green", "blue"}
	csvBody := "city,code,pax\n" + strings.Repeat("New York,JFK,100\nBoston,BOS,50\n", 120)
	jsonlBody := strings.Repeat(`{"city":"NYC","code":"JFK","pax":"100"}`+"\n", 180)

	type tally struct {
		requests, errors, rows int64
	}
	const workers = 8
	perWorker := make([]map[string]*tally, workers)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		perWorker[w] = map[string]*tally{}
		for _, tn := range tenants {
			perWorker[w][tn] = &tally{}
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				tenant := tenants[i%len(tenants)]
				tl := perWorker[w][tenant]
				tl.requests++

				query := "/ingest?partition=1KB&tenant=" + tenant
				var body io.Reader
				if i%2 == 0 {
					body = strings.NewReader(csvBody)
					query += "&format=csv&header=1"
				} else {
					body = strings.NewReader(jsonlBody)
					query += "&format=jsonl"
				}

				ctx := context.Background()
				var cancel context.CancelFunc
				switch {
				case i%23 == 0:
					// Mid-request disconnect: endless body, canceled
					// shortly after streaming starts.
					ctx, cancel = context.WithCancel(ctx)
					body = &endlessRows{row: []byte("x,y,1\n")}
					query = "/ingest?partition=1KB&tenant=" + tenant + "&format=csv"
					time.AfterFunc(2*time.Millisecond, cancel)
				case i%17 == 0:
					// Permanent mid-upload death after ~2KB.
					body = &permanentAfter{r: body, left: 2048}
				}

				req := httptest.NewRequest(http.MethodPost, query, body).WithContext(ctx)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if cancel != nil {
					cancel()
				}

				switch rec.Code {
				case http.StatusOK:
					var sum IngestSummary
					if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
						t.Errorf("request %d: bad summary: %v", i, err)
						continue
					}
					tl.rows += sum.Rows
				case http.StatusBadRequest, StatusClientClosedRequest:
					tl.errors++
					var ie IngestError
					if err := json.Unmarshal(rec.Body.Bytes(), &ie); err != nil {
						t.Errorf("request %d: bad error body: %v", i, err)
						continue
					}
					if ie.Kind != "input" && ie.Kind != "canceled" {
						t.Errorf("request %d: kind %q for status %d", i, ie.Kind, rec.Code)
					}
					// Typed partial results still count rows: the tenant
					// paid for them, the stats must show them.
					if ie.Partial != nil {
						tl.rows += ie.Partial.Rows
					}
				default:
					t.Errorf("request %d: unexpected status %d: %s", i, rec.Code, rec.Body.Bytes())
					tl.errors++
				}
			}
		}(w)
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Merge the per-worker ledgers and hold the server's per-tenant
	// counters to them: any cross-tenant bleed breaks the equality.
	for _, tenant := range tenants {
		var want tally
		for w := 0; w < workers; w++ {
			want.requests += perWorker[w][tenant].requests
			want.errors += perWorker[w][tenant].errors
			want.rows += perWorker[w][tenant].rows
		}
		gotReq, gotErr, _, gotRows := srv.tenantSnapshot(tenant)
		if gotReq != want.requests || gotErr != want.errors || gotRows != want.rows {
			t.Errorf("tenant %s: server says %d req / %d err / %d rows, clients saw %d / %d / %d",
				tenant, gotReq, gotErr, gotRows, want.requests, want.errors, want.rows)
		}
	}

	// The storm must have actually stormed.
	if srv.m.retries.Load() == 0 {
		t.Error("soak produced no retries; FlakyReader wiring is dead")
	}
	if srv.m.status499.Load() == 0 {
		t.Error("soak produced no canceled requests")
	}
	if srv.m.status400.Load() == 0 {
		t.Error("soak produced no permanent input failures")
	}
	if srv.m.status5xx.Load() != 0 {
		t.Errorf("soak produced %d 5xx responses; every injected fault is a client fault", srv.m.status5xx.Load())
	}

	// Balance: the admission ledger is empty, every tenant engine's
	// arena pool has nothing in flight, and all goroutines joined.
	srv.admitMu.Lock()
	admitted := srv.admitted
	srv.admitMu.Unlock()
	if admitted != 0 {
		t.Errorf("admission ledger holds %d bytes after drain", admitted)
	}
	for _, tenant := range tenants {
		for _, e := range srv.tenantEngines(tenant) {
			if e.arenasInUse() != 0 {
				t.Errorf("tenant %s: %d arenas still checked out", tenant, e.arenasInUse())
			}
		}
	}
	testleak.After(t, base)
}

// TestServerPartialResultTyped: a permanent body failure mid-stream
// answers 400 with the partial progress drained before the failure —
// rows and partitions the client can use instead of re-uploading blind.
func TestServerPartialResultTyped(t *testing.T) {
	srv := NewServer(ServerConfig{})
	body := "a,b\n" + strings.Repeat("1,2\n3,4\n", 1024) // ~8KB
	rec := postIngest(srv, "/ingest?partition=1KB&header=1",
		&permanentAfter{r: strings.NewReader(body), left: 6 << 10})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.Bytes())
	}
	ie := decodeIngestError(t, rec)
	if ie.Kind != "input" {
		t.Errorf("kind %q, want input", ie.Kind)
	}
	if ie.Partial == nil {
		t.Fatal("no partial result on a mid-stream failure")
	}
	if ie.Partial.Rows == 0 || ie.Partial.Partitions == 0 {
		t.Errorf("partial = %d rows / %d partitions, want progress before the failure",
			ie.Partial.Rows, ie.Partial.Partitions)
	}
}

// TestServerNetworkDisconnects: real TCP clients vanishing mid-upload.
// The server must classify every such request as a client fault (400 or
// 499, depending on whether the read error or the context cancel is
// seen first), never a 5xx or a success, and settle with nothing in
// flight.
func TestServerNetworkDisconnects(t *testing.T) {
	base := testleak.Count()
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())

	const disconnects = 20
	for i := 0; i < disconnects; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/ingest?partition=1KB", pr)
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			errc <- err
		}()
		// Stream a few partitions, then vanish.
		for j := 0; j < 4; j++ {
			if _, err := io.WriteString(pw, strings.Repeat("x,1\n", 512)); err != nil {
				break
			}
		}
		cancel()
		pw.CloseWithError(io.ErrClosedPipe)
		if err := <-errc; err == nil {
			t.Errorf("disconnect %d: client request unexpectedly succeeded", i)
		}
	}

	// The handlers finish asynchronously after their clients left.
	waitFor(t, func() bool { return srv.m.inflight.Load() == 0 })
	waitFor(t, func() bool {
		return srv.m.status400.Load()+srv.m.status499.Load() == disconnects
	})
	if got := srv.m.status5xx.Load(); got != 0 {
		t.Errorf("%d disconnects produced %d 5xx responses", disconnects, got)
	}
	if got := srv.m.status2xx.Load(); got != 0 {
		t.Errorf("%d disconnects produced %d successes", disconnects, got)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	testleak.After(t, base)
}
