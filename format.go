package parparaw

import (
	"repro/internal/dfa"
)

// Format holds the compiled parsing rules of one delimiter-separated
// format: a deterministic finite automaton whose transitions classify
// every input symbol as data, field delimiter, record delimiter, or
// other control symbol (§3.1). Formats are immutable and safe for
// concurrent use.
type Format struct {
	m *dfa.Machine
}

// CSV describes an RFC 4180-style CSV dialect.
type CSV struct {
	// Delimiter separates fields. Defaults to ','.
	Delimiter byte
	// Quote encloses fields that may contain delimiters. Defaults to '"'.
	Quote byte
	// Comment, when non-zero, declares a line-comment symbol: records
	// beginning with it are consumed without leaving any footprint in
	// the output. Comments are exactly the "more involved parsing rules"
	// that break quote-counting parsers (§1).
	Comment byte
	// CRLF accepts carriage returns immediately before the record
	// delimiter.
	CRLF bool
}

// DefaultFormat returns the RFC 4180 CSV format used when Options.Format
// is nil: comma-delimited, double-quote enclosed, "" escapes, '\n'
// record delimiters.
func DefaultFormat() *Format { return &Format{m: dfa.RFC4180()} }

// NewCSV compiles a CSV dialect into a Format.
func NewCSV(opts CSV) *Format {
	return &Format{m: dfa.NewCSV(dfa.CSVOptions{
		FieldDelim:     opts.Delimiter,
		Quote:          opts.Quote,
		Comment:        opts.Comment,
		CarriageReturn: opts.CRLF,
	})}
}

// NumStates returns the number of DFA states, |S| — the constant factor
// by which the multi-DFA simulation multiplies the parsing work (§3.1).
func (f *Format) NumStates() int { return f.m.NumStates() }

// Validate runs the DFA over the input sequentially and reports whether
// it is valid under the format (§4.3 "Validating format"). Parsing
// itself performs the same validation massively parallel when
// Options.Validate is set; this method is the small-input convenience.
func (f *Format) Validate(input []byte) error { return f.m.Validate(input) }

// Symbol classification returned by FormatBuilder transitions.
type Symbol = dfa.Emission

// Symbol classifications for FormatBuilder.On. Data symbols become part
// of field values; the three control classes populate the record, field,
// and control bitmap indexes of §3.1.
const (
	// Data marks a symbol belonging to a field's value.
	Data = dfa.EmitData
	// FieldDelim marks a symbol delimiting a field.
	FieldDelim = dfa.EmitFieldDelim | dfa.EmitControl
	// RecordDelim marks a symbol delimiting a record.
	RecordDelim = dfa.EmitRecordDelim | dfa.EmitControl
	// Control marks a non-data symbol that delimits nothing (enclosing
	// quotes, escape introducers, comment text).
	Control = dfa.EmitControl
)

// State identifies a DFA state declared on a FormatBuilder.
type State = dfa.State

// FormatBuilder declares custom parsing rules as a DFA — the general
// mechanism behind ParPaRaw's applicability to formats beyond CSV (web
// logs with comment directives, multi-character rules, etc.). Declare
// states and symbol groups, record transitions, then Build.
//
// Every (symbol group, state) pair must have exactly one transition;
// Build reports any gaps.
type FormatBuilder struct {
	b *dfa.Builder
}

// NewFormatBuilder returns an empty builder.
func NewFormatBuilder() *FormatBuilder { return &FormatBuilder{b: dfa.NewBuilder()} }

// State declares a state. Accepting states may validly end the input;
// midRecord states imply an unterminated trailing record at end of
// input.
func (fb *FormatBuilder) State(name string, accepting, midRecord bool) State {
	opts := []dfa.StateOption{dfa.Accepting(accepting)}
	if midRecord {
		opts = append(opts, dfa.MidRecord())
	}
	return fb.b.State(name, opts...)
}

// InvalidState declares the sink state entered on invalid input.
func (fb *FormatBuilder) InvalidState(name string) State {
	return fb.b.State(name, dfa.Invalid())
}

// Group declares a symbol group matching exactly the byte sym.
func (fb *FormatBuilder) Group(sym byte) int { return fb.b.Group(sym) }

// CatchAll returns the group matching every undeclared byte. Valid only
// after all Group calls.
func (fb *FormatBuilder) CatchAll() int { return fb.b.CatchAll() }

// On records that reading a symbol of group g in state from moves to
// state to, classifying the symbol as s.
func (fb *FormatBuilder) On(g int, from, to State, s Symbol) { fb.b.On(g, from, to, s) }

// OnAll records the same transition for group g from every state that
// does not already have one.
func (fb *FormatBuilder) OnAll(g int, to State, s Symbol) { fb.b.OnAll(g, to, s) }

// Build compiles the format with the given start state.
func (fb *FormatBuilder) Build(start State) (*Format, error) {
	m, err := fb.b.Build(start)
	if err != nil {
		return nil, err
	}
	return &Format{m: m}, nil
}
