package parparaw

import (
	"repro/internal/dfa"
)

// Format holds the compiled parsing rules of one delimiter-separated
// format: a deterministic finite automaton whose transitions classify
// every input symbol as data, field delimiter, record delimiter, or
// other control symbol (§3.1). Formats are immutable and safe for
// concurrent use.
type Format struct {
	m *dfa.Machine
}

// CSV describes an RFC 4180-style CSV dialect.
type CSV struct {
	// Delimiter separates fields. Defaults to ','.
	Delimiter byte
	// Quote encloses fields that may contain delimiters. Defaults to '"'.
	Quote byte
	// Comment, when non-zero, declares a line-comment symbol: records
	// beginning with it are consumed without leaving any footprint in
	// the output. Comments are exactly the "more involved parsing rules"
	// that break quote-counting parsers (§1).
	Comment byte
	// CRLF accepts carriage returns immediately before the record
	// delimiter.
	CRLF bool
}

// DefaultFormat returns the RFC 4180 CSV format used when Options.Format
// is nil: comma-delimited, double-quote enclosed, "" escapes, '\n'
// record delimiters.
func DefaultFormat() *Format { return &Format{m: dfa.RFC4180()} }

// NewCSV compiles a CSV dialect into a Format.
func NewCSV(opts CSV) *Format {
	return &Format{m: dfa.NewCSV(dfa.CSVOptions{
		FieldDelim:     opts.Delimiter,
		Quote:          opts.Quote,
		Comment:        opts.Comment,
		CarriageReturn: opts.CRLF,
	})}
}

// TSV describes a backslash-escape delimiter dialect (TSV/PSV in the
// mysqldump / PostgreSQL COPY tradition): no enclosing quotes — the
// escape symbol makes the following byte literal instead, so delimiters
// and record delimiters can appear inside field values. The escape
// introducer is dropped from the value and the escaped byte kept, i.e.
// single-byte escapes unfold during parsing.
type TSV struct {
	// Delimiter separates fields. Defaults to '\t'; use '|' for PSV.
	Delimiter byte
	// Escape makes the next byte literal field data. Defaults to '\\'.
	Escape byte
	// Comment, when non-zero, declares a line-comment symbol valid at
	// record start.
	Comment byte
	// CRLF switches the record delimiter from "\n" to the strict
	// two-byte "\r\n": a bare '\r' or bare '\n' outside an escape is
	// then invalid input.
	CRLF bool
}

// NewTSV compiles a backslash-escape TSV/PSV dialect into a Format.
func NewTSV(opts TSV) (*Format, error) {
	rd := "\n"
	if opts.CRLF {
		rd = "\r\n"
	}
	m, err := dfa.NewEscaped(dfa.EscapedOptions{
		FieldDelim:  opts.Delimiter,
		Escape:      opts.Escape,
		Comment:     opts.Comment,
		RecordDelim: rd,
	})
	if err != nil {
		return nil, err
	}
	return &Format{m: m}, nil
}

// JSONL describes the JSON-Lines dialect: one JSON object per '\n'-
// terminated record. Top-level keys and values map to alternating
// columns ({"a":1,"b":2} parses as the four fields a, 1, b, 2); quoted
// strings shed their quotes but keep escape sequences raw; nested
// objects and arrays are opaque field bytes, balanced up to MaxDepth.
// The grammar validates structure, not JSON: bare tokens pass, a raw
// newline outside the record terminator does not. With
// Options.HasHeader, column names derive from the first record's keys
// without consuming it (see Options.HasHeader).
type JSONL struct {
	// MaxDepth bounds container nesting, counting the top-level object
	// as depth 1 (JSON nesting is not regular, so the DFA must bound
	// it). 0 means dfa's default; valid range [1, 4].
	MaxDepth int
}

// NewJSONL compiles the JSON-Lines dialect into a Format.
func NewJSONL(opts JSONL) (*Format, error) {
	m, err := dfa.NewJSONL(dfa.JSONLOptions{MaxDepth: opts.MaxDepth})
	if err != nil {
		return nil, err
	}
	return &Format{m: m}, nil
}

// NewWeblog returns the W3C Extended Log Format dialect: space-
// delimited fields, '#' directive lines that vanish from the output,
// optionally double-quoted fields (user-agent, referrer) with backslash
// escapes that unfold during parsing, and CRLF tolerance. With
// Options.HasHeader, column names come from the input's "#Fields:"
// directive without consuming any record (see Options.HasHeader). It
// promotes the grammar the examples/weblog walkthrough previously
// approximated with a space-delimited CSV dialect to a first-class
// format.
func NewWeblog() *Format { return &Format{m: dfa.Weblog()} }

// NumStates returns the number of DFA states, |S| — the constant factor
// by which the multi-DFA simulation multiplies the parsing work (§3.1).
func (f *Format) NumStates() int { return f.m.NumStates() }

// Kind names the grammar family the format was compiled from: "csv",
// "escaped" (TSV/PSV), "jsonl", "weblog", or "" for formats assembled
// through FormatBuilder. Dialect-aware layers (header inference, the
// CLI's -format flag) dispatch on it; the parsing kernels never do —
// every format runs the same format-generic pipeline.
func (f *Format) Kind() string { return f.m.Kind() }

// Streamable reports whether the format may be parsed through the
// streaming pipeline (Engine.Stream and friends): every record-
// delimiter transition of its DFA must return to the start state, so
// that a partition cut at a record boundary parses correctly from the
// start state. All formats built by this package's constructors are
// streamable; a FormatBuilder grammar that is not must be parsed whole.
func (f *Format) Streamable() bool { return f.m.ResetsOnRecordDelim() }

// Validate runs the DFA over the input sequentially and reports whether
// it is valid under the format (§4.3 "Validating format"). Parsing
// itself performs the same validation massively parallel when
// Options.Validate is set; this method is the small-input convenience.
func (f *Format) Validate(input []byte) error { return f.m.Validate(input) }

// Symbol classification returned by FormatBuilder transitions.
type Symbol = dfa.Emission

// Symbol classifications for FormatBuilder.On. Data symbols become part
// of field values; the three control classes populate the record, field,
// and control bitmap indexes of §3.1.
const (
	// Data marks a symbol belonging to a field's value.
	Data = dfa.EmitData
	// FieldDelim marks a symbol delimiting a field.
	FieldDelim = dfa.EmitFieldDelim | dfa.EmitControl
	// RecordDelim marks a symbol delimiting a record.
	RecordDelim = dfa.EmitRecordDelim | dfa.EmitControl
	// Control marks a non-data symbol that delimits nothing (enclosing
	// quotes, escape introducers, comment text).
	Control = dfa.EmitControl
)

// State identifies a DFA state declared on a FormatBuilder.
type State = dfa.State

// FormatBuilder declares custom parsing rules as a DFA — the general
// mechanism behind ParPaRaw's applicability to formats beyond CSV (web
// logs with comment directives, multi-character rules, etc.). Declare
// states and symbol groups, record transitions, then Build.
//
// Every (symbol group, state) pair must have exactly one transition;
// Build reports any gaps.
type FormatBuilder struct {
	b *dfa.Builder
}

// NewFormatBuilder returns an empty builder.
func NewFormatBuilder() *FormatBuilder { return &FormatBuilder{b: dfa.NewBuilder()} }

// State declares a state. Accepting states may validly end the input;
// midRecord states imply an unterminated trailing record at end of
// input.
func (fb *FormatBuilder) State(name string, accepting, midRecord bool) State {
	opts := []dfa.StateOption{dfa.Accepting(accepting)}
	if midRecord {
		opts = append(opts, dfa.MidRecord())
	}
	return fb.b.State(name, opts...)
}

// InvalidState declares the sink state entered on invalid input.
func (fb *FormatBuilder) InvalidState(name string) State {
	return fb.b.State(name, dfa.Invalid())
}

// Group declares a symbol group matching exactly the byte sym.
func (fb *FormatBuilder) Group(sym byte) int { return fb.b.Group(sym) }

// CatchAll returns the group matching every undeclared byte. Valid only
// after all Group calls.
func (fb *FormatBuilder) CatchAll() int { return fb.b.CatchAll() }

// On records that reading a symbol of group g in state from moves to
// state to, classifying the symbol as s.
func (fb *FormatBuilder) On(g int, from, to State, s Symbol) { fb.b.On(g, from, to, s) }

// OnAll records the same transition for group g from every state that
// does not already have one.
func (fb *FormatBuilder) OnAll(g int, to State, s Symbol) { fb.b.OnAll(g, to, s) }

// Build compiles the format with the given start state.
func (fb *FormatBuilder) Build(start State) (*Format, error) {
	m, err := fb.b.Build(start)
	if err != nil {
		return nil, err
	}
	return &Format{m: m}, nil
}
