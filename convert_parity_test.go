package parparaw

// Differential parity/race harness for the parallel convert stage: for
// every tested configuration, ConvertWorkers ∈ {1, 2, GOMAXPROCS, 7}
// must produce byte-identical tables — schema, column buffers, null
// bitmaps, and the rejected bitmap. ConvertWorkers=1 (the sequential
// per-column loop) is the reference. The suite covers all three tagging
// modes, UTF-16 inputs, schema-present vs inferred runs, reject and
// default-value policies, column selection, the streaming path, and a
// concurrent-Engine hammer; run the whole file under -race to turn the
// parity checks into a race harness for the worker pool and its arena
// shards.

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/workload"
)

// convertWorkerCounts returns the worker counts under test, reference
// first. GOMAXPROCS is always included even when it collapses onto a
// listed count.
func convertWorkerCounts() []int {
	return dedupWorkerCounts(1, 2, runtime.GOMAXPROCS(0), 7)
}

// dedupWorkerCounts drops repeated worker counts, keeping first-seen
// order (shared by the parity harness and BenchmarkConvertWorkers).
func dedupWorkerCounts(counts ...int) []int {
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// assertTablesIdentical compares two tables byte for byte: schema
// (names and types), row/column counts, validity, raw string bytes and
// typed values of every cell, and the rejected bitmap.
func assertTablesIdentical(t *testing.T, label string, got, want *Table) {
	t.Helper()
	if g, w := got.Schema().String(), want.Schema().String(); g != w {
		t.Fatalf("%s: schema %s, want %s", label, g, w)
	}
	if got.NumRows() != want.NumRows() || got.NumColumns() != want.NumColumns() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label,
			got.NumRows(), got.NumColumns(), want.NumRows(), want.NumColumns())
	}
	for r := 0; r < want.NumRows(); r++ {
		if g, w := got.Rejected(r), want.Rejected(r); g != w {
			t.Fatalf("%s: row %d rejected %v, want %v", label, r, g, w)
		}
	}
	if g, w := got.RejectedCount(), want.RejectedCount(); g != w {
		t.Fatalf("%s: rejected count %d, want %d", label, g, w)
	}
	for c := 0; c < want.NumColumns(); c++ {
		gc, wc := got.Column(c), want.Column(c)
		if gc.Name() != wc.Name() || gc.Type() != wc.Type() {
			t.Fatalf("%s: column %d is %s:%v, want %s:%v", label, c, gc.Name(), gc.Type(), wc.Name(), wc.Type())
		}
		if !bytes.Equal(gc.ValidityPacked(), wc.ValidityPacked()) {
			t.Fatalf("%s: column %d validity bitmap differs", label, c)
		}
		for r := 0; r < want.NumRows(); r++ {
			if gc.IsNull(r) != wc.IsNull(r) {
				t.Fatalf("%s: row %d col %d null %v, want %v", label, r, c, gc.IsNull(r), wc.IsNull(r))
			}
			if wc.IsNull(r) {
				continue
			}
			if wc.Type() == String {
				if !bytes.Equal(gc.Bytes(r), wc.Bytes(r)) {
					t.Fatalf("%s: row %d col %d bytes %q, want %q", label, r, c, gc.Bytes(r), wc.Bytes(r))
				}
			} else if g, w := gc.ValueString(r), wc.ValueString(r); g != w {
				t.Fatalf("%s: row %d col %d value %q, want %q", label, r, c, g, w)
			}
		}
	}
}

// convertParityCase is one corpus entry of the differential sweep.
type convertParityCase struct {
	name  string
	data  []byte
	opts  Options // ConvertWorkers is overwritten by the sweep
	modes []TaggingMode
}

func convertParityCases() []convertParityCase {
	allModes := []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited}
	taggedOnly := []TaggingMode{RecordTagged}

	taxi := workload.Taxi().Generate(64<<10, 42)
	yelp := workload.Yelp().Generate(64<<10, 42)

	// Ragged inputs (RecordTagged only) with inferred types.
	var ragged bytes.Buffer
	ragged.WriteString("a,b,c,d\n")
	for i := 0; i < 500; i++ {
		switch i % 3 {
		case 0:
			ragged.WriteString("1,2\n")
		case 1:
			ragged.WriteString("3,4,5,6\n")
		default:
			ragged.WriteString("7\n")
		}
	}

	// Malformed values in typed columns: Materialize sets reject bits
	// concurrently in the parallel path, so this is the shadow-merge
	// test. Rows 0, 3, 6, … carry an unparseable int.
	var rejects bytes.Buffer
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			rejects.WriteString("notanint,2.5,x\n")
		} else {
			rejects.WriteString("17,3.25,y\n")
		}
	}
	intSchema := NewSchema(
		Field{Name: "i", Type: Int64},
		Field{Name: "f", Type: Float64},
		Field{Name: "s", Type: String},
	)

	// Inconsistent column counts + malformed values: reject bits come
	// from BOTH the tag phase (sequential, pre-pool) and the convert
	// phase (parallel shadows); the merge must preserve the union.
	var mixed bytes.Buffer
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			mixed.WriteString("1,2,3\n")
		case 1:
			mixed.WriteString("bad,5,6\n") // malformed int
		case 2:
			mixed.WriteString("7,8\n") // short record
		default:
			mixed.WriteString("9,10,11\n")
		}
	}

	// Many narrow columns: more columns than any tested worker count,
	// so the pool's claim counter wraps through many claims per worker.
	var wide bytes.Buffer
	for r := 0; r < 50; r++ {
		for c := 0; c < 40; c++ {
			if c > 0 {
				wide.WriteByte(',')
			}
			fmt.Fprintf(&wide, "%d", r*40+c)
		}
		wide.WriteByte('\n')
	}

	var utf16 strings.Builder
	for i := 0; i < 100; i++ {
		utf16.WriteString("héllo,\"wörld 🚀,quoted\",42\nπ,plain,7\n")
	}

	return []convertParityCase{
		{name: "taxi", data: taxi, opts: Options{Schema: schemaFromInternal(workload.Taxi().Schema)}, modes: allModes},
		{name: "taxi-inferred", data: taxi, modes: allModes},
		{name: "yelp-quoted", data: yelp, modes: taggedOnly},
		{name: "ragged-inferred", data: ragged.Bytes(), modes: taggedOnly},
		{name: "header", data: append([]byte("alpha,beta,gamma\n"), taxi...), opts: Options{HasHeader: true}, modes: taggedOnly},
		{name: "rejects", data: rejects.Bytes(), opts: Options{Schema: intSchema, RejectMalformed: true}, modes: allModes},
		{
			name:  "rejects-mixed",
			data:  mixed.Bytes(),
			opts:  Options{Schema: intSchema, RejectMalformed: true, RejectInconsistent: true, ExpectedColumns: 3},
			modes: taggedOnly,
		},
		{
			name: "defaults-select-skip",
			data: bytes.Repeat([]byte("1,,3,4\n"), 200),
			opts: Options{
				SelectColumns: []int{3, 1, 0},
				SkipRecords:   []int64{0, 7, 100},
				DefaultValues: map[int]string{1: "42"},
			},
			modes: taggedOnly,
		},
		{name: "wide-40-columns", data: wide.Bytes(), modes: allModes},
		{name: "utf16", data: encodeUTF16LE(utf16.String(), false), opts: Options{Encoding: UTF16LE}, modes: taggedOnly},
		{name: "utf16-bom-detect", data: encodeUTF16LE(utf16.String(), true), opts: Options{DetectEncoding: true}, modes: taggedOnly},
		{name: "empty", data: nil, modes: taggedOnly},
		{name: "single-cell", data: []byte("x"), modes: taggedOnly},
	}
}

// TestConvertWorkersParity is the core differential sweep: every worker
// count must reproduce the sequential (ConvertWorkers=1) table byte for
// byte in every tagging mode, with schemas both given and inferred.
func TestConvertWorkersParity(t *testing.T) {
	for _, tc := range convertParityCases() {
		for _, mode := range tc.modes {
			t.Run(fmt.Sprintf("%s/%s", tc.name, mode), func(t *testing.T) {
				opts := tc.opts
				opts.Mode = mode
				opts.ConvertWorkers = 1
				want, err := Parse(tc.data, opts)
				if err != nil {
					t.Fatalf("sequential reference: %v", err)
				}
				for _, w := range convertWorkerCounts()[1:] {
					opts.ConvertWorkers = w
					got, err := Parse(tc.data, opts)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					label := fmt.Sprintf("workers=%d", w)
					assertTablesIdentical(t, label, got.Table, want.Table)
					if got.Stats.InvalidInput != want.Stats.InvalidInput {
						t.Fatalf("%s: InvalidInput %v, want %v", label, got.Stats.InvalidInput, want.Stats.InvalidInput)
					}
				}
			})
		}
	}
}

// TestConvertWorkersParityStreaming pushes the worker sweep through the
// streaming pipeline in every tagging mode: partition boundaries,
// carry-over re-parses, and the per-partition arena Reset (which makes
// every later partition's AllocDirty buffers genuinely recycled) must
// compose with the convert pool.
func TestConvertWorkersParityStreaming(t *testing.T) {
	input := workload.Taxi().Generate(48<<10, 7)
	schema := schemaFromInternal(workload.Taxi().Schema)
	for _, mode := range []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited} {
		stream := func(workers int) *Table {
			t.Helper()
			res, err := Stream(input, StreamOptions{
				Options:       Options{Schema: schema, Mode: mode, ConvertWorkers: workers},
				PartitionSize: 4 << 10,
				Bus:           NewBus(BusConfig{TimeScale: 1e9, Latency: -1}),
			})
			if err != nil {
				t.Fatalf("%s/workers=%d: stream failed: %v", mode, workers, err)
			}
			combined, err := res.Combined()
			if err != nil {
				t.Fatalf("%s/workers=%d: combine failed: %v", mode, workers, err)
			}
			return combined
		}
		want := stream(1)
		if want.NumRows() == 0 {
			t.Fatalf("%s: streaming reference produced no rows", mode)
		}
		for _, w := range convertWorkerCounts()[1:] {
			assertTablesIdentical(t, fmt.Sprintf("stream/%s/workers=%d", mode, w), stream(w), want)
		}
	}
}

// TestConvertWorkersRecycledArenaParity is the dirty-alloc guard: it
// parses through one shared arena that a *different* input has already
// filled (and a Reset has recycled), so the AllocDirty buffers — the
// scatter's sorted payloads and the tag vectors, in all three tagging
// modes — really do come back holding a previous run's bytes. The
// output must still match a fresh-arena sequential reference byte for
// byte; a stale byte leaking out of the never-read sentinel regions
// would surface here.
func TestConvertWorkersRecycledArenaParity(t *testing.T) {
	spec := workload.Taxi() // constant columns: legal in every mode
	input := spec.Generate(32<<10, 42)
	poison := spec.Generate(48<<10, 99) // different bytes, larger buffers
	schema := schemaFromInternal(spec.Schema)
	for _, mode := range []TaggingMode{RecordTagged, InlineTerminated, VectorDelimited} {
		ref, err := Parse(input, Options{Schema: schema, Mode: mode, ConvertWorkers: 1})
		if err != nil {
			t.Fatalf("%s: fresh-arena reference: %v", mode, err)
		}
		for _, w := range convertWorkerCounts() {
			arena := device.NewArena()
			opts, err := Options{Schema: schema, Mode: mode, ConvertWorkers: w}.internal(core.TrailingRecord)
			if err != nil {
				t.Fatalf("%s/workers=%d: internal options: %v", mode, w, err)
			}
			opts.Arena = arena
			if _, err := core.Parse(poison, opts); err != nil {
				t.Fatalf("%s/workers=%d: poison parse: %v", mode, w, err)
			}
			arena.Reset()
			res, err := core.Parse(input, opts)
			if err != nil {
				t.Fatalf("%s/workers=%d: recycled parse: %v", mode, w, err)
			}
			got := &Table{t: res.Table}
			assertTablesIdentical(t, fmt.Sprintf("recycled/%s/workers=%d", mode, w), got, ref.Table)
		}
	}
}

// TestConvertWorkersConcurrentEngine hammers one Engine from several
// goroutines with the parallel convert stage enabled — engine-level
// concurrency (shared plan and device, pooled arenas) stacked on the
// per-run worker pool (arena shards). Under -race this is the harness
// proving the two concurrency layers compose; every result must still
// match the sequential reference.
func TestConvertWorkersConcurrentEngine(t *testing.T) {
	input := workload.Taxi().Generate(32<<10, 11)
	schema := schemaFromInternal(workload.Taxi().Schema)
	want, err := Parse(input, Options{Schema: schema, ConvertWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Options{Schema: schema, ConvertWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	const parses = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	tables := make([]*Table, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < parses; i++ {
				res, err := e.Parse(input)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d parse %d: %w", g, i, err)
					return
				}
				tables[g] = res.Table
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for g, tbl := range tables {
		assertTablesIdentical(t, fmt.Sprintf("goroutine %d", g), tbl, want.Table)
	}
}

// TestConvertWorkersValidation pins the configuration error for negative
// worker counts (caught at compile/engine-construction time).
func TestConvertWorkersValidation(t *testing.T) {
	if _, err := NewEngine(Options{ConvertWorkers: -1}); err == nil {
		t.Fatal("NewEngine accepted negative ConvertWorkers")
	}
	if _, err := Parse([]byte("a,b\n"), Options{ConvertWorkers: -3}); err == nil {
		t.Fatal("Parse accepted negative ConvertWorkers")
	}
}
