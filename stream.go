package parparaw

import (
	"fmt"
	"io"
	"time"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pcie"
	"repro/internal/stream"
	"repro/internal/transcode"
)

// DefaultPartitionSize is the streaming partition size used when
// StreamOptions.PartitionSize is zero. The paper's Figure 12 finds the
// end-to-end sweet spot at 128-256 MB for multi-gigabyte inputs; 32 MB
// is a balanced default for laptop-scale runs.
const DefaultPartitionSize = 32 << 20

// Bus is a simulated full-duplex interconnect (§4.4). Host-to-device and
// device-to-host transfers overlap at full bandwidth; same-direction
// transfers serialise. The default models a PCIe 3.0 x16 link.
type Bus struct {
	b *pcie.Bus
}

// BusConfig describes a simulated interconnect.
type BusConfig struct {
	// BandwidthHtoD and BandwidthDtoH are bytes per second per
	// direction. Zero selects ~12 GB/s (PCIe 3.0 x16 effective).
	BandwidthHtoD, BandwidthDtoH float64
	// Latency is the per-transfer setup cost. Zero selects 20 µs;
	// negative disables.
	Latency time.Duration
	// TimeScale divides all simulated delays so experiments can replay
	// the paper's multi-gigabyte schedules in reasonable wall-clock
	// time. Zero means 1 (real modelled time).
	TimeScale float64
}

// NewBus returns a simulated bus.
func NewBus(cfg BusConfig) *Bus {
	return &Bus{b: pcie.New(pcie.Config{
		BandwidthHtoD: cfg.BandwidthHtoD,
		BandwidthDtoH: cfg.BandwidthDtoH,
		Latency:       cfg.Latency,
		TimeScale:     cfg.TimeScale,
	})}
}

// StreamOptions configure a streaming parse.
type StreamOptions struct {
	// Options are the per-partition parse options. A nil Schema is
	// inferred from the first partition and then fixed for the rest, so
	// all partitions produce compatible tables.
	Options
	// PartitionSize is the bytes of raw input per partition (Figure
	// 12's x-axis). 0 uses DefaultPartitionSize.
	PartitionSize int
	// Bus is the simulated interconnect; nil uses a PCIe 3.0 x16 model.
	Bus *Bus
}

// StreamStats describes a streaming run.
type StreamStats struct {
	// Duration is the end-to-end wall-clock time, including simulated
	// transfers.
	Duration time.Duration
	// Partitions is the number of partitions processed.
	Partitions int
	// InputBytes and OutputBytes are the volumes moved over the bus.
	InputBytes, OutputBytes int64
	// ParseBusy is the cumulative device parse time.
	ParseBusy time.Duration
	// MaxCarryOver is the largest record fragment carried between
	// partitions (bytes).
	MaxCarryOver int
	// DeviceBytes is the peak device-memory footprint across all
	// partitions. All partitions share one recycled arena (§4.4), so in
	// steady state this is roughly the footprint of the largest single
	// partition, not the sum — the Figure-12 memory/throughput
	// trade-off's memory axis.
	DeviceBytes int64
}

// StreamResult is a completed streaming parse.
type StreamResult struct {
	// Tables holds one table per partition, in input order.
	Tables []*Table
	// Header holds the column names from the first partition when
	// Options.HasHeader was set.
	Header []string
	// Stats describes the run.
	Stats StreamStats
}

// Combined concatenates the per-partition tables into one.
func (r *StreamResult) Combined() (*Table, error) {
	ts := make([]*columnar.Table, len(r.Tables))
	for i, t := range r.Tables {
		ts[i] = t.t
	}
	tbl, err := columnar.Concat(ts...)
	if err != nil {
		return nil, err
	}
	return &Table{t: tbl}, nil
}

// NumRows returns the total records across all partitions.
func (r *StreamResult) NumRows() int {
	n := 0
	for _, t := range r.Tables {
		n += t.NumRows()
	}
	return n
}

// Stream parses the input end-to-end through the streaming pipeline of
// §4.4: the input is split into partitions; each is transferred to the
// (simulated) device, parsed, and its columnar data returned — with the
// three stages of consecutive partitions overlapped to exploit the
// bus's full-duplex capability. Records straddling partition boundaries
// are carried over intact.
func Stream(input []byte, opts StreamOptions) (*StreamResult, error) {
	if opts.PartitionSize == 0 {
		opts.PartitionSize = DefaultPartitionSize
	}
	bus := opts.Bus
	if bus == nil {
		bus = NewBus(BusConfig{})
	}
	if opts.DetectEncoding {
		// Detect once on the whole input's head and freeze the result:
		// only the first partition carries the byte-order mark, so
		// per-partition detection would mis-read every later partition
		// as ASCII.
		enc, skip := transcode.DetectEncoding(input)
		input = input[skip:]
		opts.DetectEncoding = false
		opts.Encoding = encodingFromInternal(enc)
	}

	out := &StreamResult{}
	first := true
	fixedSchema := opts.Schema.internal()
	// One arena for the whole run: stream.Run resets it between
	// partitions, so consecutive partitions parse inside the same device
	// allocations instead of growing the heap per partition.
	arena := device.NewArena()
	parser := stream.ParserFunc(func(part []byte, final bool) (stream.PartitionResult, error) {
		trailing := core.TrailingRemainder
		if final {
			trailing = core.TrailingRecord
		}
		copts := opts.Options.internal(trailing)
		copts.Schema = fixedSchema
		copts.Arena = arena
		copts.HasHeader = opts.HasHeader && first
		copts.SkipRows = 0
		if first {
			copts.SkipRows = opts.SkipRows
		}
		res, err := core.Parse(part, copts)
		if err != nil {
			return stream.PartitionResult{}, err
		}
		if first {
			out.Header = res.Header
			if fixedSchema == nil {
				// Freeze the inferred schema so later partitions agree.
				fixedSchema = res.Table.Schema()
			}
			first = false
		}
		return stream.PartitionResult{
			Table:         res.Table,
			CompleteBytes: len(part) - res.Remainder,
		}, nil
	})

	res, err := stream.Run(stream.Config{PartitionSize: opts.PartitionSize, Bus: bus.b, Arena: arena}, parser, input)
	if err != nil {
		return nil, err
	}
	out.Tables = make([]*Table, len(res.Tables))
	for i, t := range res.Tables {
		out.Tables[i] = &Table{t: t}
	}
	out.Stats = StreamStats{
		Duration:     res.Stats.Duration,
		Partitions:   res.Stats.Partitions,
		InputBytes:   res.Stats.InputBytes,
		OutputBytes:  res.Stats.OutputBytes,
		ParseBusy:    res.Stats.ParseBusy,
		MaxCarryOver: res.Stats.MaxCarryOver,
		DeviceBytes:  res.Stats.DeviceBytes,
	}
	return out, nil
}

// ParseReader reads r to the end and parses it with Parse. It is the
// convenience entry point for files and network sources; inputs larger
// than memory should be driven through Stream partition by partition.
func ParseReader(r io.Reader, opts Options) (*Result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("parparaw: reading input: %w", err)
	}
	return Parse(data, opts)
}
