package parparaw

import (
	"bytes"
	"context"
	"io"
	"time"

	"repro/internal/columnar"
	"repro/internal/pcie"
)

// DefaultPartitionSize is the streaming partition size used when
// StreamOptions.PartitionSize is zero. The paper's Figure 12 finds the
// end-to-end sweet spot at 128-256 MB for multi-gigabyte inputs; 32 MB
// is a balanced default for laptop-scale runs.
const DefaultPartitionSize = 32 << 20

// Bus is a simulated full-duplex interconnect (§4.4). Host-to-device and
// device-to-host transfers overlap at full bandwidth; same-direction
// transfers serialise. The default models a PCIe 3.0 x16 link.
type Bus struct {
	b *pcie.Bus
}

// BusConfig describes a simulated interconnect.
type BusConfig struct {
	// BandwidthHtoD and BandwidthDtoH are bytes per second per
	// direction. Zero selects ~12 GB/s (PCIe 3.0 x16 effective).
	BandwidthHtoD, BandwidthDtoH float64
	// Latency is the per-transfer setup cost. Zero selects 20 µs;
	// negative disables.
	Latency time.Duration
	// TimeScale divides all simulated delays so experiments can replay
	// the paper's multi-gigabyte schedules in reasonable wall-clock
	// time. Zero means 1 (real modelled time).
	TimeScale float64
}

// NewBus returns a simulated bus.
func NewBus(cfg BusConfig) *Bus {
	return &Bus{b: pcie.New(pcie.Config{
		BandwidthHtoD: cfg.BandwidthHtoD,
		BandwidthDtoH: cfg.BandwidthDtoH,
		Latency:       cfg.Latency,
		TimeScale:     cfg.TimeScale,
	})}
}

// RetryPolicy makes a streaming run resilient to transient reader
// failures: a failed read is retried in place — the stream's byte
// accounting is exact, so the retry resumes at the exact offset of the
// failed attempt, with no loss and no duplication — up to MaxAttempts
// times with capped exponential backoff. Errors the classifier rejects
// (and exhausted retries) surface as a typed error matching ErrInput,
// carrying the exact byte offset consumed before the failure.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts for one failing read
	// position (1 failed read + MaxAttempts-1 retries). Values <= 1
	// disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. Zero means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 250ms.
	MaxDelay time.Duration
	// Retryable classifies errors worth retrying. Nil retries every
	// error (still bounded by MaxAttempts). io.EOF is never retried.
	Retryable func(error) bool
}

// BadRecord is one malformed record diverted to the OnBadRecord
// callback: its partition, output row, absolute byte offset, and raw
// bytes (without the trailing record delimiter). The Raw slice aliases
// pipeline memory and is only valid for the duration of the callback;
// copy it to retain it. For UTF-16 input, Offset and Raw refer to
// positions in the partition's UTF-8 transcription.
type BadRecord struct {
	Partition int
	Row       int64
	Offset    int64
	Raw       []byte
}

// StreamOptions configure a streaming parse.
type StreamOptions struct {
	// Options are the per-partition parse options. A nil Schema is
	// inferred from the first partition and then fixed for the rest, so
	// all partitions produce compatible tables.
	Options
	// PartitionSize is the bytes of raw input per partition (Figure
	// 12's x-axis). 0 uses DefaultPartitionSize.
	PartitionSize int
	// Bus is the simulated interconnect; nil uses a PCIe 3.0 x16 model.
	Bus *Bus
	// Unordered emits each partition's table as soon as its parse
	// completes instead of buffering for input order (only meaningful
	// with Options.InFlight > 1); StreamResult.Order then records the
	// input index of each emitted table.
	Unordered bool
	// DeviceBudget, when positive, bounds the estimated device bytes of
	// the partitions concurrently in flight: the ring stops admitting
	// new partitions while the budget would be exceeded. One partition
	// is always admitted, so the run progresses under any budget —
	// unless StrictBudget is also set.
	DeviceBudget int64
	// StrictBudget fails the run with a typed error matching ErrBudget
	// when a single partition's estimated footprint alone exceeds
	// DeviceBudget, instead of admitting it anyway.
	StrictBudget bool
	// Retry is the transient-failure policy for the input reader. The
	// zero value disables retrying: the first read error fails the run.
	Retry RetryPolicy
	// OnBadRecord, when non-nil, receives every record flagged rejected
	// (inconsistent column count under RejectInconsistent, unconvertible
	// field under RejectMalformed) with its raw bytes and offset — the
	// graceful-degradation divert channel. Diverted records also remain
	// flagged in their table's rejected vector. The callback runs on a
	// partition-parse goroutine; under InFlight > 1 calls may be
	// concurrent, so the callback must be safe for concurrent use.
	OnBadRecord func(BadRecord)
	// SkipBadPartitions quarantines partitions whose parse fails with a
	// contained panic or a validation error, instead of failing the run:
	// the partition's output is dropped, counted in
	// StreamStats.QuarantinedPartitions, and the stream continues. When
	// the failed partition's record boundary was pre-scanned the carry
	// chain is intact and no neighbouring record is affected; on the
	// serial carry path the pending carry is dropped with the partition,
	// so a record straddling into it may also lose its head. Reader
	// failures and cancellation are never quarantined.
	SkipBadPartitions bool
}

// StreamStats describes a streaming run.
type StreamStats struct {
	// Duration is the end-to-end wall-clock time, including simulated
	// transfers.
	Duration time.Duration
	// Partitions is the number of partitions processed.
	Partitions int
	// InputBytes and OutputBytes are the volumes moved over the bus.
	InputBytes, OutputBytes int64
	// ParseBusy is the cumulative device parse time.
	ParseBusy time.Duration
	// MaxCarryOver is the largest record fragment carried between
	// partitions (bytes).
	MaxCarryOver int
	// InvalidInput reports that some partition's DFA saw an invalid
	// transition (only set when Options.Validate is false; with Validate
	// the run fails instead) — the streaming counterpart of
	// Stats.InvalidInput.
	InvalidInput bool
	// RowsPruned is the total number of rows rejected by
	// Options.Scan.Where across all partitions — the streaming
	// counterpart of Stats.RowsPruned.
	RowsPruned int64
	// BytesSkipped is the total number of symbol bytes the partition
	// scatters never moved (structural bytes plus everything projection
	// or predicate pushdown made irrelevant) — the streaming counterpart
	// of Stats.BytesSkipped.
	BytesSkipped int64
	// DeviceBytes is the peak device-memory footprint across all
	// partitions. With InFlight=1 all partitions share one recycled
	// arena (§4.4), so in steady state this is roughly the footprint of
	// the largest single partition — the Figure-12 memory/throughput
	// trade-off's memory axis. Under the cross-partition ring it sums
	// the per-arena peaks of the InFlight arenas the run drew: the
	// memory cost of depth is InFlight × one partition's footprint.
	DeviceBytes int64
	// InFlight is the ring depth the run actually used: the number of
	// partitions processed concurrently (1 = the serial pipeline).
	InFlight int
	// SerialFallbacks counts the non-final partitions whose record
	// boundary could not be pre-scanned (first-partition trimming
	// unsettled, UTF-16 input) and that therefore parsed on the serial
	// carry path inside the ring.
	SerialFallbacks int
	// ReadBusy, BoundaryBusy, and EmitBusy are the time the ring's
	// sequential spine spent pulling input (including host-to-device
	// transfer charges), pre-scanning record boundaries, and charging
	// device-to-host transfers, respectively. Together with ParseBusy —
	// which sums concurrent partition parses and so may exceed Duration
	// when InFlight > 1 — they expose each stage's busy share of the
	// run (the -v output of cmd/parparaw).
	ReadBusy     time.Duration
	BoundaryBusy time.Duration
	EmitBusy     time.Duration
	// Retries is the number of input read attempts that failed and were
	// retried under the run's RetryPolicy; RetriedBytes is the bytes
	// recovered by reads that succeeded after at least one retry.
	Retries      int64
	RetriedBytes int64
	// QuarantinedPartitions counts partitions whose parse failed and was
	// quarantined under SkipBadPartitions instead of failing the run;
	// QuarantinedRecords counts individual malformed records diverted to
	// OnBadRecord.
	QuarantinedPartitions int
	QuarantinedRecords    int64
}

// StreamResult is a completed streaming parse.
type StreamResult struct {
	// Tables holds one table per partition, in input order — unless the
	// run was Unordered, in which case tables appear in completion
	// order and Order records the permutation.
	Tables []*Table
	// Order maps each emitted table to its partition's input index; it
	// is non-nil only for Unordered runs with at least one table.
	Order []int
	// Header holds the column names from the first partition when
	// Options.HasHeader was set.
	Header []string
	// Stats describes the run.
	Stats StreamStats
}

// Combined concatenates the per-partition tables into one.
func (r *StreamResult) Combined() (*Table, error) {
	ts := make([]*columnar.Table, len(r.Tables))
	for i, t := range r.Tables {
		ts[i] = t.t
	}
	tbl, err := columnar.Concat(ts...)
	if err != nil {
		return nil, err
	}
	return &Table{t: tbl}, nil
}

// NumRows returns the total records across all partitions.
func (r *StreamResult) NumRows() int {
	n := 0
	for _, t := range r.Tables {
		n += t.NumRows()
	}
	return n
}

// Stream parses an in-memory input end-to-end through the streaming
// pipeline of §4.4: the input is consumed in partitions; each is
// transferred to the (simulated) device, parsed, and its columnar data
// returned — with the three stages of consecutive partitions overlapped
// to exploit the bus's full-duplex capability. Records straddling
// partition boundaries are carried over intact. It is a thin wrapper
// over StreamReader; inputs that should never be materialised in one
// buffer go straight to StreamReader.
func Stream(input []byte, opts StreamOptions) (*StreamResult, error) {
	return StreamReader(bytes.NewReader(input), opts)
}

// StreamContext is Stream with a cancellation context: see
// Engine.StreamReaderContext for the cancellation contract.
func StreamContext(ctx context.Context, input []byte, opts StreamOptions) (*StreamResult, error) {
	return StreamReaderContext(ctx, bytes.NewReader(input), opts)
}

// StreamReader parses everything r yields through the end-to-end
// streaming pipeline of §4.4, pulling fixed-size partitions from the
// reader as the device consumes them. The full input is never
// materialised: peak host buffering is bounded by O(PartitionSize +
// largest carry-over), so files and network sources larger than memory
// stream through fine. Byte-order-mark detection, the header record,
// and skipped rows are handled at the first-chunk boundary; with a nil
// Schema the types inferred from the first partition are frozen for the
// rest of the run.
//
// Callers making repeated streaming runs with one configuration should
// construct an Engine once and use Engine.StreamReader, which this
// function wraps with a throwaway engine.
func StreamReader(r io.Reader, opts StreamOptions) (*StreamResult, error) {
	return StreamReaderContext(context.Background(), r, opts)
}

// StreamReaderContext is StreamReader with a cancellation context: see
// Engine.StreamReaderContext for the cancellation contract and the
// partial-result semantics.
func StreamReaderContext(ctx context.Context, r io.Reader, opts StreamOptions) (*StreamResult, error) {
	e, err := NewEngine(opts.Options)
	if err != nil {
		return nil, err
	}
	return e.StreamReaderContext(ctx, r, StreamConfig{
		PartitionSize:     opts.PartitionSize,
		Bus:               opts.Bus,
		Unordered:         opts.Unordered,
		DeviceBudget:      opts.DeviceBudget,
		StrictBudget:      opts.StrictBudget,
		Retry:             opts.Retry,
		OnBadRecord:       opts.OnBadRecord,
		SkipBadPartitions: opts.SkipBadPartitions,
	})
}

// ReaderStreamThreshold is the input size in bytes above which
// ParseReader stops buffering the whole input and routes it through the
// streaming pipeline instead: reading to the end first would defeat the
// point of a Reader entry point for large inputs. At twice
// DefaultPartitionSize (64 MiB), inputs small enough to parse in one
// shot still take the faster single-shot path, while anything larger
// streams with bounded host buffering. It is a variable only so tests
// can lower it; services should treat it as a constant.
var ReaderStreamThreshold = 2 * DefaultPartitionSize

// ParseReader parses everything r yields. Inputs up to
// ReaderStreamThreshold bytes are buffered and parsed in one shot
// (identical to Parse); larger inputs are routed through the streaming
// pipeline with DefaultPartitionSize partitions and an instantaneous
// bus, then folded into one table, so ParseReader never materialises
// more than O(threshold + output) host memory for the raw input. On the
// streamed route, type inference sees only the first partition (pass an
// explicit Schema for full determinism), Stats reports volumes and
// duration but no per-phase device times or chunk counts, and
// Stats.InputBytes counts raw streamed bytes rather than post-header
// parsed bytes. Stats.InvalidInput is reported on both routes.
func ParseReader(r io.Reader, opts Options) (*Result, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	return e.ParseReader(r)
}
