package parparaw

import (
	"bufio"
	"io"
	"strconv"
)

// WriteCSV writes the table as RFC 4180 CSV: a header row with the
// column names, comma delimiters, '\n' record delimiters, and fields
// quoted whenever they contain a delimiter, a quote, or a record
// delimiter (quotes escaped by doubling). NULL values are written as
// empty fields, which Parse reads back as NULL for typed columns.
//
// It is the inverse of Parse for valid inputs (the fuzz harness checks
// parse → write → parse fixpoints) and a convenient export path for
// small results; bulk interchange should use the columnar buffers
// directly (Column.Bytes, Column.ValidityPacked).
func WriteCSV(w io.Writer, t *Table) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	schema := t.Schema()
	for c, f := range schema.Fields {
		if c > 0 {
			bw.WriteByte(',')
		}
		writeField(bw, []byte(f.Name))
	}
	bw.WriteByte('\n')
	for r := 0; r < t.NumRows(); r++ {
		for c := 0; c < t.NumColumns(); c++ {
			if c > 0 {
				bw.WriteByte(',')
			}
			col := t.Column(c)
			if col.IsNull(r) {
				continue
			}
			switch col.Type() {
			case String:
				writeField(bw, col.Bytes(r))
			case Float64:
				bw.WriteString(strconv.FormatFloat(col.Float64(r), 'g', -1, 64))
			default:
				bw.WriteString(col.ValueString(r))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writeField writes one field, quoting when any byte requires it.
func writeField(bw *bufio.Writer, v []byte) {
	needsQuote := len(v) == 0
	for _, b := range v {
		if b == ',' || b == '"' || b == '\n' || b == '\r' {
			needsQuote = true
			break
		}
	}
	if !needsQuote {
		bw.Write(v)
		return
	}
	bw.WriteByte('"')
	for _, b := range v {
		if b == '"' {
			bw.WriteByte('"')
		}
		bw.WriteByte(b)
	}
	bw.WriteByte('"')
}
